"""The memory-reference event model.

A trace is a sequence of :class:`MemRef` events.  Following the MultiTitan
architecture the paper simulates (which has no byte stores), references are
4 B or 8 B and naturally aligned; byte writes would appear as word
read-modify-writes, and the paper notes byte operations are insignificant
in its programs, so the workload models never emit them.

``icount`` carries the number of instructions executed up to and including
the instruction that issued this reference, *since the previous data
reference*.  Summing ``icount`` over a trace therefore gives the dynamic
instruction count, which Section 5's transactions-per-instruction charts
need.
"""

from dataclasses import dataclass

from repro.common.bitops import is_aligned
from repro.common.errors import ConfigurationError

#: Access-kind constants.  Plain ints (not an Enum) because the simulator
#: hot loops compare them millions of times.
READ = 0
WRITE = 1

_VALID_SIZES = (4, 8)


@dataclass(frozen=True)
class MemRef:
    """A single data memory reference.

    Attributes:
        address: byte address of the access.
        size: access width in bytes (4 or 8).
        kind: ``READ`` or ``WRITE``.
        icount: instructions executed since the previous reference
            (inclusive of the issuing instruction); at least 1.
    """

    address: int
    size: int
    kind: int
    icount: int = 1

    def __post_init__(self) -> None:
        if self.size not in _VALID_SIZES:
            raise ConfigurationError(
                f"reference size must be one of {_VALID_SIZES}, got {self.size}"
            )
        if not is_aligned(self.address, self.size):
            raise ConfigurationError(
                f"address {self.address:#x} is not {self.size}-byte aligned"
            )
        if self.address < 0:
            raise ConfigurationError("addresses must be non-negative")
        if self.icount < 1:
            raise ConfigurationError("icount must be >= 1")

    @property
    def is_write(self) -> bool:
        """Whether this reference is a store."""
        return self.kind == WRITE

    @property
    def is_read(self) -> bool:
        """Whether this reference is a load."""
        return self.kind == READ

    def end_address(self) -> int:
        """One past the last byte touched."""
        return self.address + self.size
