"""Memory-reference substrate: the streams every experiment consumes.

The paper drives its cache simulator from six benchmarks executed on the
MultiTitan simulator.  We do not have that hardware or those binaries, so
this package provides deterministic *synthetic workload models* of the six
benchmarks (see DESIGN.md section 2 for the substitution argument), plus a
trace container, trace file I/O, and trace statistics.

Public surface:

- :class:`repro.trace.events.MemRef` — one memory reference.
- :class:`repro.trace.trace.Trace` — a materialised reference stream.
- :func:`repro.trace.corpus.load` / :func:`repro.trace.corpus.load_all` —
  the standard six-benchmark corpus, memoised per process.
- :data:`repro.trace.workloads.WORKLOADS` — workload registry.
"""

from repro.trace.events import READ, WRITE, MemRef
from repro.trace.trace import Trace
from repro.trace.stats import TraceStats, characterize
from repro.trace.corpus import BENCHMARK_NAMES, load, load_all
from repro.trace.io import read_din_trace, read_trace, write_trace
from repro.trace.filters import downsample, filter_address_range, interleave, split_warmup

__all__ = [
    "READ",
    "WRITE",
    "MemRef",
    "Trace",
    "TraceStats",
    "characterize",
    "BENCHMARK_NAMES",
    "load",
    "load_all",
    "read_din_trace",
    "read_trace",
    "write_trace",
    "downsample",
    "filter_address_range",
    "interleave",
    "split_warmup",
]
