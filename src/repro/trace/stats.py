"""Trace characterisation (reproduces the paper's Table 1).

:func:`characterize` computes the same columns Table 1 reports — dynamic
instructions, data reads, data writes, total references — plus a few
derived quantities (reads-per-write, instructions-per-reference, footprint)
that the workload-model tests assert against.
"""

from dataclasses import dataclass

from repro.common.render import format_table
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics for one trace (one row of Table 1)."""

    name: str
    instruction_count: int
    read_count: int
    write_count: int
    footprint_bytes: int

    @property
    def ref_count(self) -> int:
        """Data reads plus data writes."""
        return self.read_count + self.write_count

    @property
    def total_refs(self) -> int:
        """Table 1's 'total refs.': instruction fetches plus data refs.

        The paper counts one instruction fetch per dynamic instruction.
        """
        return self.instruction_count + self.ref_count

    @property
    def reads_per_write(self) -> float:
        """Load/store ratio (about 2.4:1 over the paper's whole suite)."""
        if self.write_count == 0:
            return float("inf")
        return self.read_count / self.write_count

    @property
    def instructions_per_ref(self) -> float:
        """Dynamic instructions per data reference."""
        if self.ref_count == 0:
            return float("inf")
        return self.instruction_count / self.ref_count

    @property
    def write_fraction(self) -> float:
        """Fraction of data references that are stores."""
        if self.ref_count == 0:
            return 0.0
        return self.write_count / self.ref_count


def characterize(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    return TraceStats(
        name=trace.name,
        instruction_count=trace.instruction_count,
        read_count=trace.read_count,
        write_count=trace.write_count,
        footprint_bytes=trace.touched_lines(16) * 16,
    )


def format_table1(stats_list) -> str:
    """Render a list of :class:`TraceStats` in the layout of Table 1."""
    rows = []
    totals = [0, 0, 0, 0]
    for stats in stats_list:
        rows.append(
            [
                stats.name,
                stats.instruction_count,
                stats.read_count,
                stats.write_count,
                stats.total_refs,
                f"{stats.reads_per_write:.2f}",
                f"{stats.footprint_bytes / 1024:.0f}KB",
            ]
        )
        totals[0] += stats.instruction_count
        totals[1] += stats.read_count
        totals[2] += stats.write_count
        totals[3] += stats.total_refs
    rows.append(["total", totals[0], totals[1], totals[2], totals[3], "", ""])
    return format_table(
        ["program", "dyn. instr.", "data reads", "data writes", "total refs", "rd/wr", "footprint"],
        rows,
        title="Table 1: Test program characteristics (synthetic models)",
    )
