"""Trace file reader/writer.

The format is a Dinero-style line-oriented text format so traces can be
inspected, diffed, and produced by external tools:

    # comment
    r <hex-address> <size> [icount]
    w <hex-address> <size> [icount]

``icount`` defaults to 1.  Writes compress when the path ends in
``.gz``; reads sniff the gzip magic bytes, so compressed files are
recognised regardless of their name.  The format intentionally
round-trips everything a :class:`~repro.trace.trace.Trace` holds.

For bulk ingestion of large or externally captured traces, prefer the
chunked array-native path in :mod:`repro.trace.ingest` — it parses the
same formats (plus CSV) orders of magnitude faster and in bounded
memory.
"""

import gzip
import io
from typing import Iterator, Union

from repro.common.errors import TraceFormatError
from repro.trace.events import READ, WRITE, MemRef
from repro.trace.trace import Trace

_KIND_CHARS = {READ: "r", WRITE: "w"}
_CHAR_KINDS = {"r": READ, "w": WRITE}


#: Leading bytes of every gzip stream (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def _open(path: str, mode: str):
    """Open a trace file for reading or writing, gzip-aware.

    Writes honour the ``.gz`` suffix (the caller chose the name), but
    reads sniff the gzip magic bytes instead: a gzip file without the
    suffix and a plain file misnamed ``.gz`` both open correctly.
    ``utf-8-sig`` decoding strips a leading BOM transparently.
    """
    if "r" in mode:
        raw = open(path, "rb")
        try:
            magic = raw.read(len(_GZIP_MAGIC))
            raw.seek(0)
        except OSError:
            raw.close()
            raise
        if magic == _GZIP_MAGIC:
            return io.TextIOWrapper(
                gzip.GzipFile(fileobj=raw), encoding="utf-8-sig"
            )
        return io.TextIOWrapper(raw, encoding="utf-8-sig")
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _numbered_lines(stream):
    """Enumerate lines, converting stream-level failures (truncated gzip,
    undecodable bytes) into :class:`TraceFormatError` with a position."""
    line_number = 0
    iterator = iter(stream)
    while True:
        try:
            line = next(iterator)
        except StopIteration:
            return
        except (EOFError, OSError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"line {line_number + 1}: unreadable trace data ({exc})"
            ) from exc
        line_number += 1
        yield line_number, line


def write_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    with _open(path, "w") as stream:
        stream.write(f"# repro trace: {trace.name}\n")
        for address, size, kind, icount in zip(
            trace.addresses, trace.sizes, trace.kinds, trace.icounts
        ):
            if icount == 1:
                stream.write(f"{_KIND_CHARS[kind]} {address:x} {size}\n")
            else:
                stream.write(f"{_KIND_CHARS[kind]} {address:x} {size} {icount}\n")


def iter_trace_lines(stream: io.TextIOBase) -> Iterator[MemRef]:
    """Parse an open text stream into :class:`MemRef` events."""
    for line_number, line in _numbered_lines(stream):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        if len(fields) not in (3, 4):
            raise TraceFormatError(f"line {line_number}: expected 3-4 fields, got {text!r}")
        kind_char, address_text, size_text = fields[:3]
        kind = _CHAR_KINDS.get(kind_char.lower())
        if kind is None:
            raise TraceFormatError(f"line {line_number}: unknown access kind {kind_char!r}")
        try:
            address = int(address_text, 16)
            size = int(size_text)
            icount = int(fields[3]) if len(fields) == 4 else 1
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc
        try:
            yield MemRef(address, size, kind, icount)
        except Exception as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc


def read_trace(path: Union[str, "io.TextIOBase"], name: str = "") -> Trace:
    """Read a trace file written by :func:`write_trace` (or by hand)."""
    if hasattr(path, "read"):
        return Trace.from_refs(iter_trace_lines(path), name=name)
    with _open(path, "r") as stream:
        return Trace.from_refs(iter_trace_lines(stream), name=name or str(path))


def iter_din_lines(stream: io.TextIOBase, access_size: int = 4) -> Iterator[MemRef]:
    """Parse the classic Dinero "din" format: ``<label> <hex-address>``.

    Labels: 0 = data read, 1 = data write, 2 = instruction fetch
    (skipped — this library studies data caches; each fetch adds one
    instruction to the following data reference, preserving per-
    instruction rates).  Addresses are aligned down to ``access_size``.
    """
    pending_instructions = 0
    for line_number, line in _numbered_lines(stream):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        if len(fields) < 2:
            raise TraceFormatError(f"line {line_number}: expected 'label address'")
        try:
            label = int(fields[0])
            address = int(fields[1], 16)
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc
        if label == 2:
            pending_instructions += 1
            continue
        if label not in (0, 1):
            raise TraceFormatError(f"line {line_number}: unknown din label {label}")
        kind = READ if label == 0 else WRITE
        aligned = address & ~(access_size - 1)
        try:
            yield MemRef(aligned, access_size, kind, icount=pending_instructions + 1)
        except Exception as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc
        pending_instructions = 0


def read_din_trace(path: Union[str, "io.TextIOBase"], name: str = "", access_size: int = 4) -> Trace:
    """Read a Dinero-format trace file (``.gz`` supported)."""
    if hasattr(path, "read"):
        return Trace.from_refs(iter_din_lines(path, access_size), name=name)
    with _open(path, "r") as stream:
        return Trace.from_refs(
            iter_din_lines(stream, access_size), name=name or str(path)
        )
