"""Content-addressed catalog of ingested traces.

The catalog lives under the result store root (``<root>/traces``) so the
same ``REPRO_RESULT_DIR`` switch governs both.  Each trace is two files
keyed by its content hash (see :mod:`repro.trace.ingest`):

- ``<hash>.json`` — the record: name, reference counts, creation time;
- ``<hash>.trc.gz`` — the payload: gzip of the exact packed byte stream
  the hash was computed over, so a payload can be re-hashed to audit it.

Ingesting the same reference stream twice — different filenames, one
gzipped, different chunkings — lands on the same hash and therefore the
same entry.  Experiments name catalog traces ``ingested:<hash>``
(resolved by :func:`repro.trace.corpus.load`), which folds the content
hash into every ``RunKey`` so results dedup across the pool and store
exactly like generated workloads.

Like the result store, :meth:`TraceCatalog.gc` never deletes evidence:
records whose payload went missing are moved to a ``quarantine/``
sidecar with a reason envelope for manual inspection.
"""

import gzip
import json
import os
import pathlib
import tempfile
import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.trace.ingest import (
    DEFAULT_CHUNK_REFS,
    PACK_DTYPE,
    TraceHasher,
    iter_trace_chunks,
    pack_refs,
)
from repro.trace.trace import Trace

#: Catalog directory under the result store root.
CATALOG_DIRNAME = "traces"

#: Workload-name prefix resolving to a catalog trace by content hash.
INGESTED_PREFIX = "ingested:"

_QUARANTINE_DIRNAME = "quarantine"


class TraceCatalog:
    """Filesystem catalog of ingested traces, keyed by content hash."""

    def __init__(self, root):
        self.root = pathlib.Path(root)

    def record_path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def payload_path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.trc.gz"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / _QUARANTINE_DIRNAME

    # -- writes -------------------------------------------------------------

    def add(
        self,
        source,
        format: str = "auto",
        name: Optional[str] = None,
        access_size: int = 4,
        chunk_refs: int = DEFAULT_CHUNK_REFS,
    ) -> dict:
        """Ingest ``source`` into the catalog; single pass, streaming.

        Returns the record dict with a ``duplicate`` flag: a re-ingest of
        an already-catalogued stream leaves the existing entry untouched.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        hasher = TraceHasher()
        reads = writes = instructions = 0
        fd, temp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".trc.gz", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as raw, gzip.GzipFile(
                fileobj=raw, mode="wb"
            ) as payload:
                for chunk in iter_trace_chunks(
                    source,
                    format=format,
                    chunk_refs=chunk_refs,
                    access_size=access_size,
                    name=name,
                ):
                    payload.write(pack_refs(chunk).tobytes())
                    hasher.update(chunk)
                    reads += chunk.read_count
                    writes += chunk.write_count
                    instructions += chunk.instruction_count
        except BaseException:
            os.unlink(temp_name)
            raise
        digest = hasher.hexdigest()
        if self.record_path(digest).exists():
            os.unlink(temp_name)
            record = self.get(digest)
            record["duplicate"] = True
            return record
        os.replace(temp_name, self.payload_path(digest))
        record = {
            "hash": digest,
            "name": name or _default_name(source),
            "refs": hasher.refs,
            "reads": reads,
            "writes": writes,
            "instructions": instructions,
            "created": time.time(),
        }
        self._write_record(digest, record)
        record["duplicate"] = False
        return record

    def _write_record(self, digest: str, record: dict) -> None:
        fd, temp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            json.dump(record, stream, indent=2)
            stream.write("\n")
        os.replace(temp_name, self.record_path(digest))

    def rm(self, digest: str) -> bool:
        """Remove a catalog entry (record and payload); True if it existed."""
        existed = self.record_path(digest).exists()
        for path in (self.record_path(digest), self.payload_path(digest)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return existed

    # -- reads --------------------------------------------------------------

    def get(self, digest: str) -> Optional[dict]:
        """The record for ``digest``, or ``None``."""
        try:
            text = self.record_path(digest).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        return json.loads(text)

    def ls(self) -> List[dict]:
        """All records, newest first."""
        records = []
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    records.append(json.loads(path.read_text(encoding="utf-8")))
                except (OSError, ValueError):
                    continue
        records.sort(key=lambda record: record.get("created", 0), reverse=True)
        return records

    def resolve(self, digest: str) -> str:
        """Expand a unique hash prefix to the full digest."""
        if self.record_path(digest).exists():
            return digest
        matches = sorted(
            record["hash"]
            for record in self.ls()
            if str(record.get("hash", "")).startswith(digest)
        )
        if len(matches) == 1:
            return matches[0]
        if matches:
            raise ConfigurationError(
                f"ambiguous trace hash prefix {digest!r}: matches "
                + ", ".join(match[:12] for match in matches)
            )
        raise ConfigurationError(
            f"unknown ingested trace {digest!r}; see 'repro trace ls'"
        )

    def load(self, digest: str) -> Trace:
        """Materialise the catalogued trace for ``digest`` (or a unique
        prefix of it)."""
        digest = self.resolve(digest)
        record = self.get(digest)
        if record is None:
            raise ConfigurationError(
                f"unknown ingested trace {digest!r}; see 'repro trace ls'"
            )
        payload = self.payload_path(digest)
        if not payload.exists():
            raise ConfigurationError(
                f"ingested trace {digest!r} has no payload; "
                "run 'repro store gc' to quarantine the record"
            )
        with gzip.open(payload, "rb") as stream:
            raw = stream.read()
        records = np.frombuffer(raw, dtype=PACK_DTYPE)
        return Trace.from_arrays(
            np.ascontiguousarray(records["address"]),
            np.ascontiguousarray(records["size"]),
            np.ascontiguousarray(records["kind"]),
            np.ascontiguousarray(records["icount"]),
            name=f"{INGESTED_PREFIX}{digest[:12]}",
        )

    def iter_chunks(
        self, digest: str, chunk_refs: int = DEFAULT_CHUNK_REFS
    ) -> Iterator[Trace]:
        """Stream the catalogued trace as bounded chunks."""
        digest = self.resolve(digest)
        record_size = PACK_DTYPE.itemsize
        index = 0
        with gzip.open(self.payload_path(digest), "rb") as stream:
            while True:
                raw = stream.read(chunk_refs * record_size)
                if not raw:
                    return
                records = np.frombuffer(raw, dtype=PACK_DTYPE)
                yield Trace.from_arrays(
                    np.ascontiguousarray(records["address"]),
                    np.ascontiguousarray(records["size"]),
                    np.ascontiguousarray(records["kind"]),
                    np.ascontiguousarray(records["icount"]),
                    name=f"{INGESTED_PREFIX}{digest[:12]}#{index}",
                )
                index += 1

    # -- maintenance --------------------------------------------------------

    def gc(self) -> Tuple[int, int]:
        """``(kept, quarantined)``: move payload-less records aside.

        Mirrors :meth:`repro.exec.store.ResultStore.gc`: nothing is
        deleted; a record whose payload is missing is rewritten into
        ``quarantine/`` with a reason envelope so the loss stays
        inspectable.
        """
        kept = quarantined = 0
        if not self.root.is_dir():
            return 0, 0
        for path in sorted(self.root.glob("*.json")):
            digest = path.stem
            if self.payload_path(digest).exists():
                kept += 1
                continue
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError:
                raw = None
            envelope = {
                "reason": "missing-trace-payload",
                "source": str(path),
                "raw": raw,
            }
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_dir / path.name
            destination.write_text(
                json.dumps(envelope, indent=2) + "\n", encoding="utf-8"
            )
            path.unlink()
            quarantined += 1
        return kept, quarantined


def _default_name(source) -> str:
    hint = getattr(source, "name", None) if hasattr(source, "read") else source
    if isinstance(hint, bytes):
        hint = hint.decode("utf-8", "replace")
    if not isinstance(hint, str):
        return "<stream>"
    return pathlib.Path(hint).name


def open_default_catalog() -> Optional[TraceCatalog]:
    """The catalog under the default store root; ``None`` when the
    result store is disabled."""
    from repro.exec.store import default_store_root

    root = default_store_root()
    if root is None:
        return None
    return TraceCatalog(pathlib.Path(root) / CATALOG_DIRNAME)
