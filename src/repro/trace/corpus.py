"""The standard six-benchmark corpus, memoised per process.

Workload generation is deterministic but not free (hundreds of thousands
of events), and every figure sweeps the same six traces across many cache
configurations, so :func:`load` caches built traces keyed by
``(name, scale, seed)``.  Benchmarks and examples should always come
through here rather than instantiating workload classes directly.
"""

from typing import Dict, Iterable, Tuple

from repro.common.errors import ConfigurationError
from repro.trace.trace import Trace
from repro.trace.workloads import WORKLOADS

#: Table 1 order.
BENCHMARK_NAMES: Tuple[str, ...] = ("ccom", "grr", "yacc", "met", "linpack", "liver")

#: Default scale for experiments: full working sets, ~150k data references
#: per workload (see DESIGN.md on trace scaling).
DEFAULT_SCALE = 1.0

_cache: Dict[Tuple[str, float, int], Trace] = {}


def load(name: str, scale: float = DEFAULT_SCALE, seed: int = 1991) -> Trace:
    """Return the (cached) trace for benchmark ``name``.

    Besides the generated corpus, ``ingested:<content-hash>`` names
    resolve through the trace catalog (:mod:`repro.trace.catalog`) to an
    externally captured trace; ``scale`` and ``seed`` are ignored for
    those (the content hash alone fixes the reference stream, which is
    exactly why it keys the ``RunKey``).
    """
    if name.startswith("ingested:"):
        from repro.trace.catalog import open_default_catalog

        key = (name, 0.0, 0)
        if key not in _cache:
            catalog = open_default_catalog()
            if catalog is None:
                raise ConfigurationError(
                    "ingested workloads need the result store enabled "
                    "(set REPRO_RESULT_DIR to the store root)"
                )
            _cache[key] = catalog.load(name[len("ingested:"):])
        return _cache[key]
    if name not in WORKLOADS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; expected one of {sorted(WORKLOADS)}"
        )
    key = (name, scale, seed)
    if key not in _cache:
        _cache[key] = WORKLOADS[name](scale=scale, seed=seed).build()
    return _cache[key]


def load_all(
    names: Iterable[str] = BENCHMARK_NAMES,
    scale: float = DEFAULT_SCALE,
    seed: int = 1991,
) -> Dict[str, Trace]:
    """Load several benchmarks at once, preserving order."""
    return {name: load(name, scale=scale, seed=seed) for name in names}


def clear_cache() -> None:
    """Drop all memoised traces (used by tests that tune scale)."""
    _cache.clear()
