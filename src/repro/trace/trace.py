"""Materialised reference streams.

A :class:`Trace` stores a reference stream as four parallel Python lists of
ints.  That representation was chosen deliberately: the simulator hot loops
iterate these lists with ``zip``, which is substantially faster than either
constructing a ``MemRef`` per event or element-indexing numpy arrays from
Python.  Numpy views are available via :meth:`Trace.to_arrays` for
vectorised analyses.
"""

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.trace.events import READ, WRITE, MemRef


class Trace:
    """An immutable-by-convention sequence of memory references."""

    __slots__ = ("name", "addresses", "sizes", "kinds", "icounts")

    def __init__(
        self,
        addresses: List[int],
        sizes: List[int],
        kinds: List[int],
        icounts: List[int],
        name: str = "",
    ) -> None:
        lengths = {len(addresses), len(sizes), len(kinds), len(icounts)}
        if len(lengths) != 1:
            raise SimulationError("trace component lists have differing lengths")
        self.name = name
        self.addresses = addresses
        self.sizes = sizes
        self.kinds = kinds
        self.icounts = icounts

    @classmethod
    def from_refs(cls, refs: Iterable[MemRef], name: str = "") -> "Trace":
        """Build a trace by draining an iterable of :class:`MemRef`."""
        addresses: List[int] = []
        sizes: List[int] = []
        kinds: List[int] = []
        icounts: List[int] = []
        for ref in refs:
            addresses.append(ref.address)
            sizes.append(ref.size)
            kinds.append(ref.kind)
            icounts.append(ref.icount)
        return cls(addresses, sizes, kinds, icounts, name=name)

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemRef]:
        for address, size, kind, icount in zip(
            self.addresses, self.sizes, self.kinds, self.icounts
        ):
            yield MemRef(address, size, kind, icount)

    def __getitem__(self, index) -> "MemRef":
        if isinstance(index, slice):
            return Trace(
                self.addresses[index],
                self.sizes[index],
                self.kinds[index],
                self.icounts[index],
                name=self.name,
            )
        return MemRef(
            self.addresses[index],
            self.sizes[index],
            self.kinds[index],
            self.icounts[index],
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, refs={len(self)}, "
            f"reads={self.read_count}, writes={self.write_count}, "
            f"instructions={self.instruction_count})"
        )

    @property
    def read_count(self) -> int:
        """Number of load references."""
        return self.kinds.count(READ)

    @property
    def write_count(self) -> int:
        """Number of store references."""
        return self.kinds.count(WRITE)

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions modelled by this trace."""
        return sum(self.icounts)

    @property
    def byte_count(self) -> int:
        """Total bytes transferred by all references."""
        return sum(self.sizes)

    def to_arrays(self) -> dict:
        """Export as numpy arrays for vectorised analysis."""
        return {
            "addresses": np.asarray(self.addresses, dtype=np.uint64),
            "sizes": np.asarray(self.sizes, dtype=np.uint8),
            "kinds": np.asarray(self.kinds, dtype=np.uint8),
            "icounts": np.asarray(self.icounts, dtype=np.uint32),
        }

    def writes_only(self) -> "Trace":
        """A sub-trace holding only store references, preserving order.

        ``icount`` values of skipped loads are folded into the following
        store so instruction totals are preserved; the write-buffer and
        write-cache models (Section 3) consume these.
        """
        addresses: List[int] = []
        sizes: List[int] = []
        kinds: List[int] = []
        icounts: List[int] = []
        pending_icount = 0
        for address, size, kind, icount in zip(
            self.addresses, self.sizes, self.kinds, self.icounts
        ):
            pending_icount += icount
            if kind == WRITE:
                addresses.append(address)
                sizes.append(size)
                kinds.append(WRITE)
                icounts.append(pending_icount)
                pending_icount = 0
        return Trace(addresses, sizes, kinds, icounts, name=f"{self.name}:writes")

    def concat(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Concatenate two traces (e.g. to model phase sequences)."""
        return Trace(
            self.addresses + other.addresses,
            self.sizes + other.sizes,
            self.kinds + other.kinds,
            self.icounts + other.icounts,
            name=name if name is not None else f"{self.name}+{other.name}",
        )

    def touched_lines(self, line_size: int) -> int:
        """Number of distinct cache lines of ``line_size`` bytes touched.

        This is the compulsory-miss footprint, used by tests to verify the
        workload models' working-set sizes.
        """
        shift = line_size.bit_length() - 1
        lines = set()
        for address, size in zip(self.addresses, self.sizes):
            lines.add(address >> shift)
            last = (address + size - 1) >> shift
            if last != address >> shift:
                lines.add(last)
        return len(lines)

    def address_span(self) -> int:
        """Bytes between the lowest and highest touched addresses."""
        if not self.addresses:
            return 0
        return max(self.addresses) + max(self.sizes) - min(self.addresses)
