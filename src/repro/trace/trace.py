"""Materialised reference streams, stored array-native.

A :class:`Trace` stores a reference stream as four parallel numpy arrays
(``int64`` addresses, ``int32`` sizes, ``int8`` kinds, ``int32``
icounts).  The array form is what the vectorised simulator kernel
(:mod:`repro.cache.vecsim`) and the shared-memory trace transport
(:mod:`repro.exec.shm`) consume — both are zero-copy over these arrays.

The historical list-based API is preserved: ``trace.addresses`` (and
``sizes``/``kinds``/``icounts``) return plain Python lists, materialised
lazily and cached, because the per-reference simulator loops iterate them
with ``zip`` — which is substantially faster than element-indexing numpy
arrays from Python.  Traces are immutable by convention; the arrays are
marked read-only to protect shared-memory pages.
"""

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.errors import SimulationError
from repro.trace.events import READ, WRITE, MemRef

#: Canonical dtypes of the four component arrays, in layout order.  The
#: shared-memory transport packs pages in exactly this order (descending
#: alignment, so every array lands on a naturally aligned offset).
ARRAY_DTYPES = (
    ("addresses", np.int64),
    ("sizes", np.int32),
    ("icounts", np.int32),
    ("kinds", np.int8),
)


def _component(values: Sequence, dtype) -> np.ndarray:
    """Coerce one component to its canonical 1-D array (zero-copy when
    already in canonical form)."""
    try:
        array = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError, OverflowError) as exc:
        raise SimulationError(f"trace component is not integer-like: {exc}") from exc
    if array.ndim != 1:
        raise SimulationError("trace components must be one-dimensional")
    return array


class Trace:
    """An immutable-by-convention sequence of memory references."""

    __slots__ = (
        "name",
        "_addresses",
        "_sizes",
        "_kinds",
        "_icounts",
        "_address_list",
        "_size_list",
        "_kind_list",
        "_icount_list",
    )

    def __init__(
        self,
        addresses: Sequence[int],
        sizes: Sequence[int],
        kinds: Sequence[int],
        icounts: Sequence[int],
        name: str = "",
    ) -> None:
        self.name = name
        self._addresses = _component(addresses, np.int64)
        self._sizes = _component(sizes, np.int32)
        self._icounts = _component(icounts, np.int32)
        self._kinds = _component(kinds, np.int8)
        lengths = {
            len(self._addresses),
            len(self._sizes),
            len(self._kinds),
            len(self._icounts),
        }
        if len(lengths) != 1:
            raise SimulationError("trace component lists have differing lengths")
        for array in (self._addresses, self._sizes, self._kinds, self._icounts):
            array.flags.writeable = False
        # List views are materialised on first access; seed them when the
        # caller handed us lists so list-heavy code pays no conversion.
        self._address_list = addresses if type(addresses) is list else None
        self._size_list = sizes if type(sizes) is list else None
        self._kind_list = kinds if type(kinds) is list else None
        self._icount_list = icounts if type(icounts) is list else None

    @classmethod
    def from_refs(cls, refs: Iterable[MemRef], name: str = "") -> "Trace":
        """Build a trace by draining an iterable of :class:`MemRef`."""
        addresses: List[int] = []
        sizes: List[int] = []
        kinds: List[int] = []
        icounts: List[int] = []
        for ref in refs:
            addresses.append(ref.address)
            sizes.append(ref.size)
            kinds.append(ref.kind)
            icounts.append(ref.icount)
        return cls(addresses, sizes, kinds, icounts, name=name)

    @classmethod
    def from_arrays(
        cls,
        addresses: np.ndarray,
        sizes: np.ndarray,
        kinds: np.ndarray,
        icounts: np.ndarray,
        name: str = "",
    ) -> "Trace":
        """Wrap canonical-dtype arrays without copying (shared-memory path)."""
        return cls(addresses, sizes, kinds, icounts, name=name)

    # -- list views (the historical hot-loop API) ---------------------------

    @property
    def addresses(self) -> List[int]:
        """Reference addresses as a plain list (cached)."""
        if self._address_list is None:
            self._address_list = self._addresses.tolist()
        return self._address_list

    @property
    def sizes(self) -> List[int]:
        """Reference sizes as a plain list (cached)."""
        if self._size_list is None:
            self._size_list = self._sizes.tolist()
        return self._size_list

    @property
    def kinds(self) -> List[int]:
        """Reference kinds as a plain list (cached)."""
        if self._kind_list is None:
            self._kind_list = self._kinds.tolist()
        return self._kind_list

    @property
    def icounts(self) -> List[int]:
        """Per-reference instruction counts as a plain list (cached)."""
        if self._icount_list is None:
            self._icount_list = self._icounts.tolist()
        return self._icount_list

    # -- array views (the vectorised API; read-only, zero-copy) -------------

    @property
    def address_array(self) -> np.ndarray:
        """Addresses as a read-only ``int64`` array."""
        return self._addresses

    @property
    def size_array(self) -> np.ndarray:
        """Sizes as a read-only ``int32`` array."""
        return self._sizes

    @property
    def kind_array(self) -> np.ndarray:
        """Kinds as a read-only ``int8`` array."""
        return self._kinds

    @property
    def icount_array(self) -> np.ndarray:
        """Instruction counts as a read-only ``int32`` array."""
        return self._icounts

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[MemRef]:
        for address, size, kind, icount in zip(
            self.addresses, self.sizes, self.kinds, self.icounts
        ):
            yield MemRef(address, size, kind, icount)

    def __getitem__(self, index) -> "MemRef":
        if isinstance(index, slice):
            return Trace(
                self._addresses[index],
                self._sizes[index],
                self._kinds[index],
                self._icounts[index],
                name=self.name,
            )
        return MemRef(
            int(self._addresses[index]),
            int(self._sizes[index]),
            int(self._kinds[index]),
            int(self._icounts[index]),
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, refs={len(self)}, "
            f"reads={self.read_count}, writes={self.write_count}, "
            f"instructions={self.instruction_count})"
        )

    @property
    def read_count(self) -> int:
        """Number of load references."""
        return int(np.count_nonzero(self._kinds == READ))

    @property
    def write_count(self) -> int:
        """Number of store references."""
        return int(np.count_nonzero(self._kinds == WRITE))

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions modelled by this trace."""
        return int(self._icounts.sum(dtype=np.int64))

    @property
    def byte_count(self) -> int:
        """Total bytes transferred by all references."""
        return int(self._sizes.sum(dtype=np.int64))

    def to_arrays(self) -> dict:
        """Export as numpy arrays for vectorised analysis.

        Kept for backward compatibility (and its historical unsigned
        dtypes); prefer the zero-copy ``*_array`` properties.
        """
        return {
            "addresses": np.asarray(self._addresses, dtype=np.uint64),
            "sizes": np.asarray(self._sizes, dtype=np.uint8),
            "kinds": np.asarray(self._kinds, dtype=np.uint8),
            "icounts": np.asarray(self._icounts, dtype=np.uint32),
        }

    def writes_only(self) -> "Trace":
        """A sub-trace holding only store references, preserving order.

        ``icount`` values of skipped loads are folded into the *following*
        store, and loads trailing the last store fold backwards into that
        last store, so instruction totals are preserved exactly; the
        write-buffer and write-cache models (Section 3) consume these.
        The degenerate case of a trace with no stores at all returns an
        empty trace (its instruction count is necessarily dropped — there
        is no store to carry it).
        """
        store_positions = np.flatnonzero(self._kinds == WRITE)
        name = f"{self.name}:writes"
        if len(store_positions) == 0:
            return Trace([], [], [], [], name=name)
        cumulative = np.cumsum(self._icounts, dtype=np.int64)
        boundaries = cumulative[store_positions]
        icounts = np.diff(boundaries, prepend=0)
        # Trailing loads after the last store: fold their instructions
        # into the last emitted store instead of silently dropping them.
        icounts[-1] += int(cumulative[-1]) - int(boundaries[-1])
        return Trace(
            self._addresses[store_positions],
            self._sizes[store_positions],
            self._kinds[store_positions],
            icounts,
            name=name,
        )

    def concat(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Concatenate two traces (e.g. to model phase sequences)."""
        return Trace(
            np.concatenate([self._addresses, other._addresses]),
            np.concatenate([self._sizes, other._sizes]),
            np.concatenate([self._kinds, other._kinds]),
            np.concatenate([self._icounts, other._icounts]),
            name=name if name is not None else f"{self.name}+{other.name}",
        )

    def touched_lines(self, line_size: int) -> int:
        """Number of distinct cache lines of ``line_size`` bytes touched.

        This is the compulsory-miss footprint, used by tests to verify the
        workload models' working-set sizes.
        """
        shift = line_size.bit_length() - 1
        first = self._addresses >> shift
        last = (self._addresses + self._sizes - 1) >> shift
        return len(np.unique(np.concatenate([first, last])))

    def address_span(self) -> int:
        """Bytes between the lowest touched address and one past the
        highest touched byte (the true footprint extent, even when the
        widest reference is not the highest one)."""
        if len(self._addresses) == 0:
            return 0
        ends = self._addresses + self._sizes
        return int(ends.max()) - int(self._addresses.min())
