"""Streaming, chunked, array-native trace ingestion.

:func:`repro.trace.io.read_trace` materialises one ``MemRef`` object per
line and holds the whole trace in RAM — fine for the synthetic corpus,
hopeless for externally captured traces.  This module is the scale path:

- binary block reads (``read_bytes`` at a time) with a tail carry, so a
  line split across block boundaries is reassembled and peak memory
  stays bounded by one block plus one output chunk;
- vectorised numpy parsing of three formats: the repro text format
  (``r <hex-address> <size> [icount]``), the classic Dinero ``din``
  format (``<label> <hex-address>``), and CSV with the text-format
  columns and an optional header row;
- transparent gzip decided by magic-byte sniffing — the file *content*
  decides, not the filename — with a UTF-8 BOM tolerated and CRLF line
  endings treated as whitespace;
- :exc:`~repro.common.errors.TraceFormatError` with a global line number
  for every malformed input — never a bare ``ValueError``;
- bounded output: :func:`iter_trace_chunks` yields
  :class:`~repro.trace.trace.Trace` chunks of at most ``chunk_refs``
  references each, ready for the chunk-resumable engines
  (:func:`repro.cache.fastsim.simulate_trace_chunked` and friends).

Content identity: :func:`pack_refs` defines the canonical packed byte
encoding of a reference stream and :class:`TraceHasher` its SHA-256 —
the trace's *content hash*, invariant to source format, chunking, and
compression.  The catalog (:mod:`repro.trace.catalog`) and the
``ingested:<hash>`` workload name key on it, which is what makes
ingested traces dedup across the pool and store like generated ones.
"""

import gzip
import hashlib
import zlib
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.trace.trace import Trace

#: Default references per emitted chunk (~4.5 MB of component arrays).
DEFAULT_CHUNK_REFS = 1 << 18

#: Default bytes per block read; also the memory bound of the parser.
DEFAULT_READ_BYTES = 1 << 22

#: Accepted values for the ``format`` argument.
INGEST_FORMATS = ("auto", "text", "din", "csv")

GZIP_MAGIC = b"\x1f\x8b"
_BOM = b"\xef\xbb\xbf"

#: Canonical packed record encoding hashed by :class:`TraceHasher`:
#: little-endian, no padding, one record per reference in stream order.
PACK_DTYPE = np.dtype(
    [("address", "<i8"), ("size", "<i4"), ("icount", "<i4"), ("kind", "i1")]
)

_HEX_VALUES = np.full(256, -1, dtype=np.int64)
for _char in b"0123456789":
    _HEX_VALUES[_char] = _char - ord("0")
for _char in b"abcdef":
    _HEX_VALUES[_char] = _char - ord("a") + 10
for _char in b"ABCDEF":
    _HEX_VALUES[_char] = _char - ord("A") + 10
_DEC_VALUES = np.full(256, -1, dtype=np.int64)
for _char in b"0123456789":
    _DEC_VALUES[_char] = _char - ord("0")
_POW10 = 10 ** np.arange(19, dtype=np.int64)

#: Whitespace (space, tab, CR, LF) as one table lookup per byte.
_WS_LUT = np.zeros(256, dtype=bool)
for _char in b" \t\r\n":
    _WS_LUT[_char] = True

#: Digit caps keeping every parsed value inside an int64: 16 hex digits
#: can wrap negative (caught by the address >= 0 validation), anything
#: longer is rejected as an overlong field before decoding.
_MAX_HEX_DIGITS = 16
_MAX_DEC_DIGITS = 18


def _fail(line_number: int, message: str):
    raise TraceFormatError(f"line {line_number}: {message}")


# ---------------------------------------------------------------------------
# Byte source: gzip sniffing + bounded block reads.
# ---------------------------------------------------------------------------


class _PrependedReader:
    """Push sniffed magic bytes back onto an unseekable stream."""

    def __init__(self, head: bytes, stream):
        self._head = head
        self._stream = stream

    def read(self, n: int = -1) -> bytes:
        if self._head:
            if n is None or n < 0:
                data = self._head + self._stream.read()
                self._head = b""
                return data
            data, self._head = self._head[:n], self._head[n:]
            if len(data) < n:
                data += self._stream.read(n - len(data))
            return data
        return self._stream.read(n)


class _ByteSource:
    """Binary block reader over a path or file object.

    Gzip is detected by magic bytes regardless of the name, and every
    read error from a truncated or corrupt compressed stream surfaces as
    :exc:`TraceFormatError` carrying the line the parser had reached.
    """

    def __init__(self, source):
        if hasattr(source, "read"):
            raw = source
            self._owns_raw = False
        else:
            raw = open(source, "rb")
            self._owns_raw = True
        magic = raw.read(2)
        try:
            raw.seek(0)
        except (OSError, AttributeError):
            raw = _PrependedReader(magic, raw)
        self._raw = raw
        if magic == GZIP_MAGIC:
            self._stream = gzip.GzipFile(fileobj=raw)
        else:
            self._stream = raw

    def read(self, n: int, line_number: int) -> bytes:
        try:
            return self._stream.read(n)
        except (EOFError, OSError, zlib.error) as exc:
            _fail(line_number, f"truncated or corrupt gzip stream ({exc})")

    def close(self) -> None:
        if self._stream is not self._raw:
            self._stream.close()
        if self._owns_raw:
            self._raw.close()


# ---------------------------------------------------------------------------
# Vectorised tokeniser.
# ---------------------------------------------------------------------------


class _Lines:
    """Token/line structure of one parse buffer.

    The buffer is a ``uint8`` array that always ends with a newline (the
    driver appends a virtual one at EOF).  Whitespace is space, tab, CR
    (so CRLF files tokenise identically to LF files) and LF.  Matching
    the line readers in :mod:`repro.trace.io`, a ``#`` comments a line
    only when it is the first non-blank character.
    """

    __slots__ = (
        "buf",
        "first_line",
        "newline_positions",
        "line_count",
        "tok_start",
        "tok_length",
        "tok_line",
        "line_tokens",
        "line_first_token",
        "data_lines",
    )

    def __init__(self, buf: np.ndarray, first_line: int):
        self.buf = buf
        self.first_line = first_line
        self.newline_positions = np.flatnonzero(buf == 10)
        self.line_count = len(self.newline_positions)
        ws = _WS_LUT[buf]
        nonws = ~ws
        prev_ws = np.empty(len(buf), dtype=bool)
        prev_ws[0] = True
        prev_ws[1:] = ws[:-1]
        self.tok_start = np.flatnonzero(nonws & prev_ws)
        next_ws = np.empty(len(buf), dtype=bool)
        next_ws[-1] = True
        next_ws[:-1] = ws[1:]
        ends = np.flatnonzero(nonws & next_ws) + 1
        self.tok_length = ends - self.tok_start
        # Tokens never sit on a newline, so the count of newlines before
        # a token's start byte is exactly its zero-based line index.
        self.tok_line = np.searchsorted(self.newline_positions, self.tok_start)
        self.line_tokens = np.bincount(self.tok_line, minlength=self.line_count)
        self.line_first_token = np.cumsum(self.line_tokens) - self.line_tokens
        populated = np.flatnonzero(self.line_tokens > 0)
        if len(populated):
            first = self.tok_start[self.line_first_token[populated]]
            populated = populated[self.buf[first] != ord("#")]
        self.data_lines = populated

    def line_number(self, line_index) -> int:
        return self.first_line + int(line_index)

    def token_text(self, token_index) -> str:
        start = int(self.tok_start[token_index])
        length = int(self.tok_length[token_index])
        return self.buf[start : start + length].tobytes().decode("ascii", "replace")

    def line_text(self, line_index) -> str:
        newlines = self.newline_positions
        start = 0 if line_index == 0 else int(newlines[line_index - 1]) + 1
        end = int(newlines[line_index])
        return self.buf[start:end].tobytes().decode("ascii", "replace").strip()


def _parse_numbers(lines: _Lines, tokens: np.ndarray, base: int, what: str):
    """Decode the given tokens as integers, vectorised.

    A leading ``-`` is accepted so that negative sizes and addresses
    fail *validation* with a precise line-numbered message rather than
    lexing; hex accepts an optional ``0x`` prefix.  Returns
    ``(values, token_lines)`` as int64 arrays.
    """
    if not len(tokens):
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    buf = lines.buf
    starts = lines.tok_start[tokens]
    lengths = lines.tok_length[tokens]
    token_lines = lines.tok_line[tokens]
    negative = buf[starts] == ord("-")
    if negative.any():
        starts = starts + negative
        lengths = lengths - negative
    if base == 16:
        lut, max_digits = _HEX_VALUES, _MAX_HEX_DIGITS
        # The buffer ends with a newline, so starts + 1 is always in range.
        prefixed = (
            (lengths >= 2)
            & (buf[starts] == ord("0"))
            & ((buf[np.minimum(starts + 1, len(buf) - 1)] | 32) == ord("x"))
        )
        if prefixed.any():
            starts = starts + 2 * prefixed
            lengths = lengths - 2 * prefixed
    else:
        lut, max_digits = _DEC_VALUES, _MAX_DEC_DIGITS
    if ((lengths <= 0) | (lengths > max_digits)).any():
        empty = lengths <= 0
        if empty.any():
            bad = int(np.flatnonzero(empty)[0])
            _fail(
                lines.line_number(token_lines[bad]),
                f"invalid {what} {lines.token_text(tokens[bad])!r}",
            )
        bad = int(np.flatnonzero(lengths > max_digits)[0])
        _fail(
            lines.line_number(token_lines[bad]),
            f"{what} field too long ({int(lengths[bad])} digits): "
            f"{lines.token_text(tokens[bad])!r}",
        )
    width = int(lengths.max())
    if width == 1:
        # Single-digit batch (the usual shape of size/icount columns).
        values = lut[buf[starts]]
        if (values < 0).any():
            bad = int(np.flatnonzero(values < 0)[0])
            _fail(
                lines.line_number(token_lines[bad]),
                f"invalid {what} {lines.token_text(tokens[bad])!r}",
            )
        if negative.any():
            values = np.where(negative, -values, values)
        return values, token_lines
    # Padded 2-D decode: one (token, digit-column) grid bounded by the
    # overlong check above, so no per-digit scatter/gather bookkeeping.
    cols = np.arange(width)
    index = starts[:, None] + cols
    np.minimum(index, len(buf) - 1, out=index)  # padding columns only
    digits = lut[buf[index]]
    mask = cols < lengths[:, None]
    digits = np.where(mask, digits, 0)
    if (digits < 0).any():
        bad = int(np.flatnonzero((digits < 0).any(axis=1))[0])
        _fail(
            lines.line_number(token_lines[bad]),
            f"invalid {what} {lines.token_text(tokens[bad])!r}",
        )
    if base == 16 and width < 16:
        # Decode every token as if left-padded to ``width`` digits with
        # trailing zeros (constant per-column shifts), then divide the
        # padding back out per row.  Safe below 16 digits: the padded
        # value uses at most 4*width < 64 bits.
        padded = (digits << ((width - 1 - cols) * 4)).sum(axis=1)
        values = padded >> ((width - lengths) * 4)
    elif base == 16:
        place = np.maximum(lengths[:, None] - 1 - cols, 0)
        values = np.where(mask, digits << (place * 4), 0).sum(axis=1)
    else:
        padded = (digits * _POW10[width - 1 - cols]).sum(axis=1)
        values = padded // _POW10[width - lengths]
    if negative.any():
        values = np.where(negative, -values, values)
    return values, token_lines


def _validate_refs(first_line, data_lines, addresses, sizes, icounts) -> None:
    """The :class:`~repro.trace.events.MemRef` invariants, vectorised,
    with the first failing reference reported by its source line
    (``first_line`` plus its zero-based buffer line index)."""
    bad = (sizes != 4) & (sizes != 8)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            first_line + int(data_lines[index]),
            f"reference size must be one of (4, 8), got {int(sizes[index])}",
        )
    bad = addresses < 0
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            first_line + int(data_lines[index]),
            f"address must be non-negative, got {int(addresses[index])}",
        )
    bad = (addresses & (sizes - 1)) != 0
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            first_line + int(data_lines[index]),
            f"address {int(addresses[index]):#x} is not aligned to its "
            f"size {int(sizes[index])}",
        )
    bad = (icounts < 1) | (icounts > 2**31 - 1)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            first_line + int(data_lines[index]),
            f"icount must be a positive 32-bit count, got {int(icounts[index])}",
        )


# ---------------------------------------------------------------------------
# Format parsers.
# ---------------------------------------------------------------------------


def _parse_text_buffer(lines: _Lines, skip_header: bool = False):
    """Parse text-format lines; returns component arrays or ``None``
    when the buffer carries no data lines."""
    data = lines.data_lines
    if skip_header and len(data):
        first_token = lines.line_first_token[data[0]]
        if lines.token_text(first_token).lower() == "kind":
            data = data[1:]
    if not len(data):
        return None
    counts = lines.line_tokens[data]
    bad = (counts < 3) | (counts > 4)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            lines.line_number(data[index]),
            f"expected 3-4 fields, got {lines.line_text(data[index])!r}",
        )
    first_tok = lines.line_first_token[data]
    kind_length = lines.tok_length[first_tok]
    kind_char = lines.buf[lines.tok_start[first_tok]] | 32
    bad = (kind_length != 1) | ~((kind_char == ord("r")) | (kind_char == ord("w")))
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        _fail(
            lines.line_number(data[index]),
            f"unknown access kind {lines.token_text(first_tok[index])!r}",
        )
    kinds = (kind_char == ord("w")).astype(np.int8)
    addresses, _ = _parse_numbers(lines, first_tok + 1, 16, "address")
    sizes, _ = _parse_numbers(lines, first_tok + 2, 10, "size")
    icounts = np.ones(len(data), dtype=np.int64)
    has_icount = counts == 4
    if has_icount.any():
        icounts[has_icount] = _parse_numbers(
            lines, (first_tok + 3)[has_icount], 10, "icount"
        )[0]
    _validate_refs(lines.first_line, data, addresses, sizes, icounts)
    return addresses, sizes, kinds, icounts


def _decode_columns(grid, c0, c1, base):
    """Decode one fixed-width digit field across every grid row; ``None``
    when any byte is not a digit of ``base`` (the caller falls back)."""
    lut = _HEX_VALUES if base == 16 else _DEC_VALUES
    digits = lut[grid[:, c0:c1]]
    if (digits < 0).any():
        return None
    width = c1 - c0
    if base == 16:
        return (digits << ((width - 1 - np.arange(width)) * 4)).sum(axis=1)
    return (digits * _POW10[width - 1 - np.arange(width)]).sum(axis=1)


def _decode_stride(buf, starts, c0, c1, base):
    """Decode a fixed-column digit field straight from the buffer,
    Horner-style, one strided gather per column — no row matrix at all.
    ``None`` when any byte is not a digit (invalid input *or* a line
    whose spaces sit elsewhere; the caller distinguishes)."""
    lut = _HEX_VALUES if base == 16 else _DEC_VALUES
    index = starts + c0
    values = lut[buf[index]]
    if (values < 0).any():
        return None
    for _ in range(c0 + 1, c1):
        index += 1
        digits = lut[buf[index]]
        if (digits < 0).any():
            return None
        if base == 16:
            values = (values << 4) | digits
        else:
            values = values * 10 + digits
    return values


def _layout_bounds(cols, length):
    """Validate a space layout and return field boundaries, or ``None``.

    A legal layout is ``<kind> <field> <field>[ <field>]``: the kind
    char at column 0, single spaces, nonempty digit fields of bounded
    width.
    """
    if (
        len(cols) not in (2, 3)
        or cols[0] != 1
        or cols[-1] == length - 1
        or (np.diff(cols) == 1).any()
    ):
        return None
    bounds = [int(col) for col in cols] + [length]
    if bounds[1] - 2 > _MAX_HEX_DIGITS:
        return None
    if max(b - a - 1 for a, b in zip(bounds[1:], bounds[2:])) > _MAX_DEC_DIGITS:
        return None
    return bounds


def _stride_group(buf, starts, length):
    """Decode one same-length line group assuming every line shares the
    first line's space pattern; ``None`` sends the group to the matrix
    path (mixed patterns or invalid bytes — it tells them apart)."""
    head = int(starts[0])
    bounds = _layout_bounds(np.flatnonzero(buf[head : head + length] == 32), length)
    if bounds is None:
        return None
    for col in bounds[:-1]:
        if not (buf[starts + col] == 32).all():
            return None
    addresses = _decode_stride(buf, starts, 2, bounds[1], 16)
    if addresses is None:
        return None
    sizes = _decode_stride(buf, starts, bounds[1] + 1, bounds[2], 10)
    if sizes is None:
        return None
    icounts = None
    if len(bounds) == 4:
        icounts = _decode_stride(buf, starts, bounds[2] + 1, bounds[3], 10)
        if icounts is None:
            return None
    return addresses, sizes, icounts


_BAIL = object()  # matrix-path sentinel: hand the whole buffer to the tokenizer


def _grid_group(buf, starts, length):
    """Decode one same-length line group with mixed space patterns: the
    lines become a byte matrix, split into per-pattern subgroups by a
    64-bit space-mask key.  Returns ``(addresses, sizes, icounts)`` in
    group order, or :data:`_BAIL` on anything irregular."""
    grid = buf[starts[:, None] + np.arange(length)]
    space = grid == ord(" ")
    keys = space.astype(np.uint64) @ (
        np.uint64(1) << np.arange(length, dtype=np.uint64)
    )
    _, inverse = np.unique(keys, return_inverse=True)
    addresses = np.empty(len(starts), dtype=np.int64)
    sizes = np.empty(len(starts), dtype=np.int64)
    icounts = np.ones(len(starts), dtype=np.int64)
    for key in range(int(inverse.max()) + 1):
        rows = np.flatnonzero(inverse == key)
        sub = grid[rows]
        bounds = _layout_bounds(np.flatnonzero(space[rows[0]]), length)
        if bounds is None:
            return _BAIL
        decoded = _decode_columns(sub, 2, bounds[1], 16)
        if decoded is None:
            return _BAIL
        addresses[rows] = decoded
        decoded = _decode_columns(sub, bounds[1] + 1, bounds[2], 10)
        if decoded is None:
            return _BAIL
        sizes[rows] = decoded
        if len(bounds) == 4:
            decoded = _decode_columns(sub, bounds[2] + 1, bounds[3], 10)
            if decoded is None:
                return _BAIL
            icounts[rows] = decoded
    return addresses, sizes, icounts


def _parse_text_fast(buf: np.ndarray, first_line: int):
    """Structural fast path for regular text-format buffers.

    Real trace files are overwhelmingly regular: every line is
    ``<kind> <hex-address> <size>[ <icount>]`` with single spaces.
    Data lines are grouped by (length, space-pattern) and each group
    decodes as one dense byte matrix with fixed field columns — a
    handful of whole-array passes instead of per-token gather
    bookkeeping.  Returns ``(parsed, line_count)``, where ``parsed`` is
    ``None`` for a buffer of only comments and blanks; or ``None`` on
    *any* irregularity (tabs or CR in a data line, extra spaces, ``0x``
    prefixes, non-digit bytes, overlong fields, wrong field counts...)
    — the caller then reruns the generic tokenizer, which either
    accepts the oddity or raises the precise line-numbered error.
    """
    newline_positions = np.flatnonzero(buf == 10)
    line_count = len(newline_positions)
    line_starts = np.empty(line_count, dtype=np.int64)
    line_starts[0] = 0
    line_starts[1:] = newline_positions[:-1] + 1
    first = buf[line_starts]  # a blank line's first byte is its newline
    lowered = first | 32
    is_data = (lowered == ord("r")) | (lowered == ord("w"))
    if not (is_data | (first == 10) | (first == ord("#"))).all():
        return None
    data = np.flatnonzero(is_data)
    if not len(data):
        return None, line_count
    refs = len(data)
    addresses = np.empty(refs, dtype=np.int64)
    sizes = np.empty(refs, dtype=np.int64)
    kinds = (lowered[data] == ord("w")).astype(np.int8)
    icounts = np.ones(refs, dtype=np.int64)
    starts = line_starts[data]
    lengths = newline_positions[data] - starts
    # A legal regular line is at most 1+1+16+1+18+1+18 = 56 bytes; the
    # 64-bit pattern keys in the matrix path also rely on length <= 63.
    if int(lengths.max()) > 63:
        return None
    for length in np.flatnonzero(np.bincount(lengths)):
        members = np.flatnonzero(lengths == length)
        group_starts = starts[members]
        group = _stride_group(buf, group_starts, int(length))
        if group is None:
            group = _grid_group(buf, group_starts, int(length))
            if group is _BAIL:
                return None
        group_addresses, group_sizes, group_icounts = group
        addresses[members] = group_addresses
        sizes[members] = group_sizes
        if group_icounts is not None:
            icounts[members] = group_icounts
    _validate_refs(first_line, data, addresses, sizes, icounts)
    return (addresses, sizes, kinds, icounts), line_count


class _TextParser:
    format = "text"

    def munge(self, buf: np.ndarray) -> np.ndarray:
        return buf

    def parse_fast(self, buf: np.ndarray, first_line: int):
        return _parse_text_fast(buf, first_line)

    def parse(self, lines: _Lines):
        return _parse_text_buffer(lines)


class _CsvParser:
    """The text-format columns, comma-separated, with an optional
    ``kind,address,size[,icount]`` header row."""

    format = "csv"

    def __init__(self):
        self._header_pending = True

    def munge(self, buf: np.ndarray) -> np.ndarray:
        return np.where(buf == ord(","), np.uint8(32), buf)

    def parse(self, lines: _Lines):
        parsed = _parse_text_buffer(lines, skip_header=self._header_pending)
        if len(lines.data_lines):
            self._header_pending = False
        return parsed


class _DinParser:
    """Classic Dinero ``<label> <hex-address>``: labels 0/1 are data
    reads/writes, label 2 an instruction fetch folded into the next data
    reference's icount (carried across buffer and chunk boundaries;
    trailing fetches at EOF are dropped, matching ``iter_din_lines``)."""

    format = "din"

    def __init__(self, access_size: int = 4):
        self.access_size = access_size
        self.pending = 0

    def munge(self, buf: np.ndarray) -> np.ndarray:
        return buf

    def parse(self, lines: _Lines):
        data = lines.data_lines
        if not len(data):
            return None
        counts = lines.line_tokens[data]
        bad = counts < 2
        if bad.any():
            index = int(np.flatnonzero(bad)[0])
            _fail(lines.line_number(data[index]), "expected 'label address'")
        first_tok = lines.line_first_token[data]
        labels, _ = _parse_numbers(lines, first_tok, 10, "din label")
        addresses, _ = _parse_numbers(lines, first_tok + 1, 16, "address")
        bad = (labels < 0) | (labels > 2)
        if bad.any():
            index = int(np.flatnonzero(bad)[0])
            _fail(
                lines.line_number(data[index]),
                f"unknown din label {int(labels[index])}",
            )
        fetch = labels == 2
        refs = np.flatnonzero(~fetch)
        fetches_before = np.cumsum(fetch)
        if not len(refs):
            self.pending += int(fetches_before[-1])
            return None
        at_ref = fetches_before[refs]
        icounts = np.empty(len(refs), dtype=np.int64)
        icounts[0] = self.pending + int(at_ref[0]) + 1
        icounts[1:] = np.diff(at_ref) + 1
        self.pending = int(fetches_before[-1] - at_ref[-1])
        aligned = addresses[refs] & ~(self.access_size - 1)
        kinds = (labels[refs] == 1).astype(np.int8)
        sizes = np.full(len(refs), self.access_size, dtype=np.int64)
        _validate_refs(lines.first_line, data[refs], aligned, sizes, icounts)
        return aligned, sizes, kinds, icounts


def _make_parser(format: str, access_size: int):
    if format == "text":
        return _TextParser()
    if format == "csv":
        return _CsvParser()
    if format == "din":
        return _DinParser(access_size)
    raise ConfigurationError(
        f"unknown trace format {format!r}; expected one of {INGEST_FORMATS}"
    )


def _format_from_name(source) -> Optional[str]:
    """Filename hint: only ``.din``/``.csv`` are authoritative (after
    stripping ``.gz``); everything else falls through to content sniff."""
    name = getattr(source, "name", source)
    if not isinstance(name, (str, bytes)):
        return None
    name = name.decode("utf-8", "replace") if isinstance(name, bytes) else str(name)
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    if name.endswith(".din"):
        return "din"
    if name.endswith(".csv"):
        return "csv"
    return None


def _sniff_buffer(buf: np.ndarray) -> Optional[str]:
    """Decide the format from the first populated non-comment line;
    ``None`` when the buffer holds only blanks and comments.

    Only a bounded prefix is tokenised — the first data line is all the
    sniff reads, so a large first block need not be scanned twice.  A
    prefix of nothing but comments falls back to the full buffer.
    """
    prefix = 1 << 16
    if len(buf) > prefix:
        cut = np.flatnonzero(buf[:prefix] == 10)
        if len(cut):
            sniffed = _sniff_lines(_Lines(buf[: int(cut[-1]) + 1], 1))
            if sniffed is not None:
                return sniffed
    return _sniff_lines(_Lines(buf, 1))


def _sniff_lines(lines: _Lines) -> Optional[str]:
    if not len(lines.data_lines):
        return None
    first_line = lines.data_lines[0]
    if "," in lines.line_text(first_line):
        return "csv"
    first_token = lines.token_text(lines.line_first_token[first_line])
    if first_token.lower() in ("r", "w"):
        return "text"
    return "din"


# ---------------------------------------------------------------------------
# Chunk assembly and the streaming driver.
# ---------------------------------------------------------------------------


class _ChunkAssembler:
    """Accumulate parsed component arrays and emit exact-size chunks."""

    def __init__(self, chunk_refs: int, name: str):
        self.chunk_refs = chunk_refs
        self.name = name
        self.buffers = []
        self.buffered = 0
        self.emitted = 0

    def add(self, addresses, sizes, kinds, icounts) -> Iterator[Trace]:
        self.buffers.append((addresses, sizes, kinds, icounts))
        self.buffered += len(addresses)
        while self.buffered >= self.chunk_refs:
            yield self._emit(self.chunk_refs)

    def finish(self) -> Iterator[Trace]:
        if self.buffered:
            yield self._emit(self.buffered)

    def _emit(self, count: int) -> Trace:
        merged = [np.concatenate([b[i] for b in self.buffers]) for i in range(4)]
        self.buffers = []
        if count < len(merged[0]):
            self.buffers = [tuple(array[count:] for array in merged)]
        self.buffered -= count
        addresses, sizes, kinds, icounts = (array[:count] for array in merged)
        chunk = Trace.from_arrays(
            np.ascontiguousarray(addresses, dtype=np.int64),
            np.ascontiguousarray(sizes, dtype=np.int32),
            np.ascontiguousarray(kinds, dtype=np.int8),
            np.ascontiguousarray(icounts, dtype=np.int32),
            name=f"{self.name}#{self.emitted}",
        )
        self.emitted += 1
        return chunk


def iter_trace_chunks(
    source,
    format: str = "auto",
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    access_size: int = 4,
    name: Optional[str] = None,
    read_bytes: int = DEFAULT_READ_BYTES,
) -> Iterator[Trace]:
    """Stream ``source`` as :class:`Trace` chunks of ``chunk_refs`` refs.

    ``source`` is a path or a binary file object.  ``format`` is one of
    :data:`INGEST_FORMATS`; ``"auto"`` uses a ``.din``/``.csv`` filename
    hint (after stripping ``.gz``) and otherwise sniffs the first data
    line.  ``read_bytes`` bounds the parser's working set and is mainly
    a test knob — shrinking it forces lines to split across block reads.
    """
    if format not in INGEST_FORMATS:
        raise ConfigurationError(
            f"unknown trace format {format!r}; expected one of {INGEST_FORMATS}"
        )
    if chunk_refs < 1:
        raise ConfigurationError("chunk_refs must be positive")
    if read_bytes < 1:
        raise ConfigurationError("read_bytes must be positive")
    if format == "auto":
        format = _format_from_name(source) or "auto"
    if name is None:
        hint = getattr(source, "name", None) if hasattr(source, "read") else source
        name = str(hint) if isinstance(hint, (str, bytes)) else "<stream>"
        name = name.decode("utf-8", "replace") if isinstance(name, bytes) else name
    stream = _ByteSource(source)
    try:
        yield from _parse_stream(stream, format, chunk_refs, access_size, name, read_bytes)
    finally:
        stream.close()


def _parse_stream(stream, format, chunk_refs, access_size, name, read_bytes):
    parser = None if format == "auto" else _make_parser(format, access_size)
    chunks = _ChunkAssembler(chunk_refs, name)
    carry = b""
    line_base = 0
    at_start = True
    while True:
        block = stream.read(read_bytes, line_base + 1)
        eof = not block
        pending = carry + block
        carry = b""
        if at_start:
            if not eof and len(pending) < len(_BOM):
                carry = pending
                continue
            if pending.startswith(_BOM):
                pending = pending[len(_BOM) :]
            at_start = False
        if eof:
            if pending and not pending.endswith(b"\n"):
                pending += b"\n"
            data = pending
        else:
            cut = pending.rfind(b"\n")
            if cut < 0:
                carry = pending
                continue
            data = pending[: cut + 1]
            carry = pending[cut + 1 :]
        if data:
            if parser is None:
                sniffed = _sniff_buffer(np.frombuffer(data, dtype=np.uint8))
                if sniffed is None:
                    line_base += data.count(b"\n")
                    if eof:
                        break
                    continue
                parser = _make_parser(sniffed, access_size)
            buf = parser.munge(np.frombuffer(data, dtype=np.uint8))
            handler = getattr(parser, "parse_fast", None)
            fast = handler(buf, line_base + 1) if handler is not None else None
            if fast is not None:
                parsed, line_count = fast
                line_base += line_count
            else:
                lines = _Lines(buf, line_base + 1)
                parsed = parser.parse(lines)
                line_base += lines.line_count
            if parsed is not None:
                yield from chunks.add(*parsed)
        if eof:
            break
    yield from chunks.finish()


def ingest_trace(
    source,
    format: str = "auto",
    access_size: int = 4,
    name: Optional[str] = None,
    read_bytes: int = DEFAULT_READ_BYTES,
) -> Trace:
    """Read a whole trace through the chunked path (convenience wrapper)."""
    merged: Optional[Trace] = None
    for chunk in iter_trace_chunks(
        source,
        format=format,
        access_size=access_size,
        name=name,
        read_bytes=read_bytes,
    ):
        merged = chunk if merged is None else merged.concat(chunk)
    if merged is None:
        return Trace.from_arrays(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.int8),
            np.zeros(0, dtype=np.int32),
            name=name or "",
        )
    if name:
        merged.name = name
    return merged


# ---------------------------------------------------------------------------
# Content identity.
# ---------------------------------------------------------------------------


def pack_refs(trace: Trace) -> np.ndarray:
    """The canonical packed record array of ``trace``'s references."""
    packed = np.empty(len(trace), dtype=PACK_DTYPE)
    packed["address"] = trace.address_array
    packed["size"] = trace.size_array
    packed["icount"] = trace.icount_array
    packed["kind"] = trace.kind_array
    return packed


class TraceHasher:
    """SHA-256 over the canonical packed reference stream, incrementally.

    Feeding the same reference stream in any chunking — or from any
    source format or compression — produces the same digest, which is
    why the digest can serve as the trace's identity everywhere.
    """

    def __init__(self):
        self._sha = hashlib.sha256()
        self.refs = 0

    def update(self, trace: Trace) -> "TraceHasher":
        self._sha.update(pack_refs(trace).tobytes())
        self.refs += len(trace)
        return self

    def hexdigest(self) -> str:
        return self._sha.hexdigest()


def trace_content_hash(trace: Trace) -> str:
    """The content hash of an in-memory trace."""
    return TraceHasher().update(trace).hexdigest()
