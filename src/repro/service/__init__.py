"""Long-running experiment service over the pool and the store.

The orchestration stack (:class:`~repro.exec.pool.ExperimentPool` +
:class:`~repro.exec.store.ResultStore`) is a per-process library: every
consumer pays pool spin-up, and identical sweeps submitted by two
concurrent clients each simulate the full grid because dedup only
happens *inside* one pool.  This package puts a persistent HTTP/JSON
server in front of both, so many clients share one warm pool, one store
and one in-flight computation per spec:

- :mod:`repro.service.protocol` — the wire formats: job requests
  (explicit spec lists or kind/workload-grid/config-grid sweeps, reusing
  :class:`~repro.exec.keys.ExperimentSpec` serde) and job payloads;
- :mod:`repro.service.queue` — the bounded priority job queue with
  round-robin fairness across client tokens, the in-flight spec ledger
  that coalesces overlapping submissions (each spec computed once,
  counted in the ``coalesced`` telemetry), and the job state machine;
- :mod:`repro.service.app` — :class:`ExperimentService` (job workers
  over one pool/store) plus the stdlib ``ThreadingHTTPServer`` front end
  (submit with 429 back-pressure, NDJSON event streams, result and
  store-catalog endpoints, graceful drain);
- :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  ``urllib``-based client the ``repro submit``/``jobs``/``watch`` CLI
  subcommands use.

Everything is standard library only (``http.server`` + ``json``); start
a server with ``python -m repro serve`` (see ``docs/service.md``).
"""

from repro.service.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ENV_SERVE_HOST,
    ENV_SERVE_PORT,
    ExperimentService,
    ServiceServer,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    parse_job_request,
)
from repro.service.queue import (
    Job,
    JobQueue,
    QueueFull,
    ServiceDraining,
    ServiceTelemetry,
    SpecLedger,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENV_SERVE_HOST",
    "ENV_SERVE_PORT",
    "ExperimentService",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    "PROTOCOL_VERSION",
    "JobRequest",
    "ProtocolError",
    "parse_job_request",
    "Job",
    "JobQueue",
    "QueueFull",
    "ServiceDraining",
    "ServiceTelemetry",
    "SpecLedger",
]
