"""Wire formats for the experiment service.

A *job request* names a batch of experiments one client wants resolved.
Two shapes are accepted (both JSON objects):

- **explicit** — ``{"specs": [<spec>, ...]}`` where each ``<spec>`` is an
  :meth:`ExperimentSpec.to_dict` payload (kind, workload, scale, seed,
  flush, nested config);
- **grid** — ``{"kind": ..., "workloads": [...], "configs": [...],
  "scale": ..., "seed": ..., "flush": ...}``, the sweep/figure shape: the
  cartesian product expands *workload-major* (for each workload, every
  config) so each workload's grid is contiguous and the pool's batched
  dispatch sees maximal groups.

Either shape may carry ``priority`` (higher runs earlier; default 0) and
``token`` (the client identity used for round-robin fairness; default
``"anonymous"``).  Duplicate specs are dropped, preserving first-seen
order — the job's results come back in exactly that order.

Everything on the wire reuses the serde the store already trusts:
specs round-trip through :meth:`ExperimentSpec.to_dict`/``from_dict``
(config classes provide their own ``to_dict``/``from_dict``), stats
through each kind's registered ``stats_type``, run events through
:meth:`RunEvent.to_dict`, and telemetry through
:meth:`PoolTelemetry.to_dict` — so a service result decodes to dataclass
instances bit-identical to a local run's.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.exec.experiments import UnknownExperimentKind, get_kind
from repro.exec.keys import ExperimentSpec

#: Bump on incompatible wire changes; served in every job payload.
PROTOCOL_VERSION = 1

#: Fairness identity used when a request names no client token.
DEFAULT_TOKEN = "anonymous"


class ProtocolError(ValueError):
    """A request payload that cannot be decoded into a job (HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One decoded submission: deduplicated specs plus queue metadata."""

    specs: Tuple[ExperimentSpec, ...]
    priority: int = 0
    token: str = DEFAULT_TOKEN
    #: Spec count before deduplication (0 = nothing was dropped).
    requested: int = 0

    def __post_init__(self) -> None:
        if not self.requested:
            object.__setattr__(self, "requested", len(self.specs))


def _decode_spec(payload: object) -> ExperimentSpec:
    if not isinstance(payload, dict):
        raise ProtocolError(f"spec must be an object, got {type(payload).__name__}")
    try:
        return ExperimentSpec.from_dict(payload)
    except (UnknownExperimentKind, ConfigurationError) as error:
        raise ProtocolError(str(error)) from error
    except (ValueError, TypeError, KeyError) as error:
        raise ProtocolError(f"bad spec payload: {error}") from error


def _expand_grid(payload: dict) -> List[ExperimentSpec]:
    """The sweep shape: kind + workload grid + config grid, workload-major."""
    try:
        kind = get_kind(str(payload["kind"]))
    except KeyError:
        raise ProtocolError("grid requests need a 'kind'") from None
    except (UnknownExperimentKind, ConfigurationError) as error:
        raise ProtocolError(str(error)) from error
    if kind.config_type is None:
        raise ProtocolError(
            f"experiment kind {kind.name!r} registered no config_type; "
            "submit explicit specs is impossible for it"
        )
    workloads = payload.get("workloads")
    configs = payload.get("configs")
    if not isinstance(workloads, list) or not workloads:
        raise ProtocolError("grid requests need a non-empty 'workloads' list")
    if not isinstance(configs, list) or not configs:
        raise ProtocolError("grid requests need a non-empty 'configs' list")
    try:
        scale = float(payload.get("scale", 1.0))
        seed = int(payload.get("seed", 1991))
        flush = bool(payload.get("flush", True))
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad grid parameters: {error}") from error
    decoded_configs = []
    for config_payload in configs:
        try:
            decoded_configs.append(kind.config_type.from_dict(config_payload))
        except (ConfigurationError, ValueError, TypeError, KeyError) as error:
            raise ProtocolError(f"bad config payload: {error}") from error
    return [
        ExperimentSpec(
            kind=kind.name,
            workload=str(workload),
            scale=scale,
            seed=seed,
            config=config,
            flush=flush,
        )
        for workload in workloads
        for config in decoded_configs
    ]


def parse_job_request(payload: object) -> JobRequest:
    """Decode one ``POST /v1/jobs`` body into a :class:`JobRequest`.

    Raises :class:`ProtocolError` (mapped to HTTP 400) on anything the
    service cannot turn into a valid spec batch.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("job request must be a JSON object")
    if "specs" in payload:
        specs_payload = payload["specs"]
        if not isinstance(specs_payload, list) or not specs_payload:
            raise ProtocolError("'specs' must be a non-empty list")
        specs = [_decode_spec(entry) for entry in specs_payload]
    else:
        specs = _expand_grid(payload)
    try:
        priority = int(payload.get("priority", 0))
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad priority: {error}") from error
    token = str(payload.get("token", DEFAULT_TOKEN)) or DEFAULT_TOKEN
    return JobRequest(
        specs=tuple(dict.fromkeys(specs)),
        priority=priority,
        token=token,
        requested=len(specs),
    )


def grid_request(
    kind: str,
    workloads,
    configs,
    scale: float = 1.0,
    seed: int = 1991,
    flush: bool = True,
    priority: int = 0,
    token: str = DEFAULT_TOKEN,
) -> Dict[str, object]:
    """Build the grid-shaped submission payload (client-side helper)."""
    return {
        "kind": kind,
        "workloads": list(workloads),
        "configs": [config.to_dict() for config in configs],
        "scale": scale,
        "seed": seed,
        "flush": flush,
        "priority": priority,
        "token": token,
    }


def specs_request(
    specs,
    priority: int = 0,
    token: str = DEFAULT_TOKEN,
) -> Dict[str, object]:
    """Build the explicit-specs submission payload (client-side helper)."""
    return {
        "specs": [spec.to_dict() for spec in specs],
        "priority": priority,
        "token": token,
    }


def decode_stats(kind_name: str, payload: dict):
    """Rebuild one stats dataclass from its wire dict (bit-identical)."""
    return get_kind(kind_name).stats_type.from_dict(payload)
