"""The experiment service: job workers over one warm pool and store.

:class:`ExperimentService` is the heart — a fixed crew of worker threads
pulling jobs off the bounded fair queue (:mod:`repro.service.queue`) and
resolving each through the shared :class:`~repro.exec.pool.ExperimentPool`
(memory -> disk -> compute, fanned out across worker processes) with
cross-client coalescing: before computing, a job claims its specs in the
:class:`~repro.service.queue.SpecLedger`; specs another in-flight job
already claimed are *subscribed* instead, and resolve from that job's
computation (counted in the ``coalesced`` telemetry).  Results are
bit-identical to a local run — the service adds routing, never math.

:class:`ServiceServer` is the stdlib HTTP front end
(``http.server.ThreadingHTTPServer``; one thread per connection, safe
because every handler either answers from locked state or tails a job's
condition-signalled event log):

====================================  =====================================
``POST /v1/jobs``                     submit (202; 400 bad payload; 429
                                      queue full; 503 draining)
``GET /v1/jobs``                      job summaries, newest last
``GET /v1/jobs/{id}``                 one job's summary
``GET /v1/jobs/{id}/events``          newline-delimited JSON event stream
                                      (``?from=N`` resumes mid-log)
``GET /v1/jobs/{id}/result``          specs + stats + telemetry once done
``GET /v1/store/stats``               the store summary, as JSON
``GET /v1/runs[?kind=...]``           store catalog (digest/kind/key rows)
``POST /v1/traces[?format=&name=]``   ingest the raw request body into the
                                      trace catalog (201; 400 malformed
                                      trace; 404 store disabled)
``GET /v1/traces``                    catalogued traces, newest first
``GET /v1/traces/{hash}``             one catalog record (prefix ok)
``DELETE /v1/traces/{hash}``          drop a catalog entry
``GET /v1/health``                    liveness + drain state
``GET /v1/telemetry``                 service counters incl. ``coalesced``
====================================  =====================================

Catalogued traces run through the normal job API as ``ingested:<hash>``
workload names (see docs/workloads.md), deduplicating by content hash
like every other spec.

Graceful drain: :meth:`ExperimentService.begin_drain` flips submissions
to 503 while in-flight *and already-queued* jobs run to completion and
persist; :meth:`drain` blocks until the last accepted job is terminal,
then stops the workers.  ``repro serve`` wires SIGTERM/SIGINT to exactly
that, so a service under a process manager exits 0 with a healthy store.
"""

import dataclasses
import json
import os
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.exec.keys import ExperimentSpec
from repro.exec.pool import ExperimentPool, PoolTelemetry, RunEvent, default_jobs
from repro.exec.store import ResultStore, open_default_store
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    parse_job_request,
)
from repro.service.queue import (
    DEFAULT_QUEUE_DEPTH,
    Job,
    JobQueue,
    QueueFull,
    ServiceDraining,
    ServiceTelemetry,
    SpecLedger,
)

#: Environment variables giving ``repro serve`` (and the client CLI
#: subcommands) their default bind address.
ENV_SERVE_HOST = "REPRO_SERVE_HOST"
ENV_SERVE_PORT = "REPRO_SERVE_PORT"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: Seconds between keepalive lines on an otherwise idle event stream.
STREAM_KEEPALIVE = 5.0

#: Finished jobs kept for ``GET /v1/jobs``; oldest are forgotten first.
JOB_HISTORY_LIMIT = 512


def default_host() -> str:
    """Bind/connect host: ``$REPRO_SERVE_HOST`` or ``127.0.0.1``."""
    return os.environ.get(ENV_SERVE_HOST) or DEFAULT_HOST


def default_port() -> int:
    """Bind/connect port: ``$REPRO_SERVE_PORT`` or ``8321``."""
    raw = os.environ.get(ENV_SERVE_PORT)
    return int(raw) if raw else DEFAULT_PORT


class ExperimentService:
    """One warm pool + one store + a crew of job workers, shared by all."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        workers: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ) -> None:
        self.store = open_default_store() if store is None else store
        self.pool = ExperimentPool(
            store=self.store, jobs=default_jobs() if jobs is None else jobs
        )
        #: Cross-job in-memory result cache (the pool's first lookup tier).
        self.memo: Dict[ExperimentSpec, object] = {}
        self.queue = JobQueue(queue_depth)
        self.ledger = SpecLedger()
        self.telemetry = ServiceTelemetry()
        self._telemetry_lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._jobs_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self._worker_count = max(1, workers)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the job worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self._worker_count):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting jobs; everything already accepted still runs."""
        self._draining.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain gracefully: 503 new jobs, finish accepted ones, stop.

        Returns ``True`` when every accepted job reached a terminal state
        within ``timeout`` (``None`` = wait forever).
        """
        self.begin_drain()
        with self._jobs_lock:
            accepted = list(self._jobs.values())
        finished = all(job.wait(timeout) for job in accepted)
        self.stop()
        return finished

    def stop(self) -> None:
        """Stop the workers after they finish what they already hold."""
        self._stopping = True
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []

    # -- submission ----------------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Accept one job into the queue (or raise the back-pressure error)."""
        if self._draining.is_set() or self._stopping:
            with self._telemetry_lock:
                self.telemetry.rejected_draining += 1
            raise ServiceDraining("service is draining; resubmit elsewhere")
        job = Job(request)
        try:
            self.queue.push(job)
        except QueueFull:
            with self._telemetry_lock:
                self.telemetry.rejected_full += 1
            raise
        except ServiceDraining:
            with self._telemetry_lock:
                self.telemetry.rejected_draining += 1
            raise
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._trim_history()
        with self._telemetry_lock:
            self.telemetry.submitted += 1
        job.add_event({"type": "job", "id": job.id, "state": "queued"})
        return job

    def job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    def _trim_history(self) -> None:
        """Forget the oldest finished jobs past the history bound."""
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        for job_id in finished[: max(0, len(finished) - JOB_HISTORY_LIMIT)]:
            del self._jobs[job_id]

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._stopping:
                    return
                continue
            try:
                self._run_job(job)
            except BaseException as error:  # never kill a worker thread
                if job.state not in ("done", "failed"):
                    job.fail(error)
                with self._telemetry_lock:
                    self.telemetry.failed += 1

    def _run_batch(self, job: Job, specs: List[ExperimentSpec], reporter):
        """One locked pool batch for ``job``; folds its telemetry in."""
        with self.pool.lock:
            self.pool.callback = reporter
            try:
                results = self.pool.run_many(specs, memo=self.memo)
            finally:
                self.pool.callback = None
            job.telemetry.add(
                PoolTelemetry.from_dict(self.pool.telemetry.to_dict())
            )
        return results

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        job.add_event(
            {
                "type": "job",
                "id": job.id,
                "state": "running",
                "specs": len(job.specs),
            }
        )
        total = len(job.specs)
        progress_lock = threading.Lock()
        progress = {"completed": 0}

        def reporter(event: RunEvent) -> None:
            # Re-number pool events to job-level progress: the pool only
            # sees this job's claimed subset, the stream shows the whole
            # job (coalesced specs advance the same counter below).
            advancing = event.source in ("memory", "store", "computed")
            with progress_lock:
                if advancing:
                    progress["completed"] += 1
                completed = progress["completed"]
            job.add_event(
                {
                    "type": "run",
                    **dataclasses.replace(
                        event, completed=completed, total=total
                    ).to_dict(),
                }
            )

        try:
            claimed, shared = self.ledger.claim(job.specs, job.id)
            results: Dict[ExperimentSpec, object] = {}
            if claimed:
                try:
                    computed = self._run_batch(job, claimed, reporter)
                except BaseException as error:
                    # Never strand a subscriber: a failed claim resolves
                    # as an error and the subscribers recompute themselves.
                    for spec in claimed:
                        self.ledger.release(spec, error)
                    raise
                for spec in claimed:
                    self.ledger.fulfill(spec, computed[spec])
                results.update(computed)

            orphaned: List[ExperimentSpec] = []
            for spec, entry in shared.items():
                while not entry.event.wait(timeout=1.0):
                    if self._stopping:
                        raise RuntimeError(
                            "service stopped while waiting on a shared spec"
                        )
                if entry.error is not None:
                    orphaned.append(spec)
                    continue
                results[spec] = entry.stats
                job.coalesced += 1
                with self._telemetry_lock:
                    self.telemetry.coalesced += 1
                with progress_lock:
                    progress["completed"] += 1
                    completed = progress["completed"]
                job.add_event(
                    {
                        "type": "run",
                        **RunEvent(
                            "coalesced", spec, 0.0, completed, total
                        ).to_dict(),
                    }
                )
            if orphaned:
                # The owning job failed these specs; compute them here
                # (the pool's own retry ladder already ran underneath).
                results.update(self._run_batch(job, orphaned, reporter))

            job.finish([results[spec] for spec in job.specs])
            with self._telemetry_lock:
                self.telemetry.completed += 1
            job.add_event(
                {
                    "type": "job",
                    "id": job.id,
                    "state": "done",
                    "coalesced": job.coalesced,
                    "telemetry": job.telemetry.to_dict(),
                }
            )
        except BaseException as error:
            job.fail(error)
            with self._telemetry_lock:
                self.telemetry.failed += 1
            job.add_event(
                {
                    "type": "job",
                    "id": job.id,
                    "state": "failed",
                    "error": job.error,
                }
            )

    @property
    def catalog(self):
        """The trace catalog under the store root; ``None`` when the
        store is disabled (catalogued traces need persistence)."""
        if self.store is None:
            return None
        from repro.trace.catalog import CATALOG_DIRNAME, TraceCatalog

        return TraceCatalog(self.store.root / CATALOG_DIRNAME)

    # -- reporting -----------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """Service counters plus queue/job gauges (the ``/v1/telemetry`` body)."""
        from repro.exec.pool import aggregate_telemetry

        with self._telemetry_lock:
            counters = self.telemetry.to_dict()
        states: Dict[str, int] = {}
        for job in self.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "protocol": PROTOCOL_VERSION,
            "service": counters,
            # Process-wide pool counters: every batch this service ran,
            # including profiled_runs/profile_passes from size-ladder
            # collapses (per-job slices live in each job's result body).
            "pool": aggregate_telemetry().to_dict(),
            "queue_depth": len(self.queue),
            "queue_bound": self.queue.depth,
            "in_flight_specs": len(self.ledger),
            "jobs_by_state": dict(sorted(states.items())),
            "draining": self.draining,
        }

    def result_payload(self, job: Job) -> dict:
        """The ``GET /v1/jobs/{id}/result`` body for a finished job."""
        payload = job.summary()
        payload["protocol"] = PROTOCOL_VERSION
        if job.state == "done" and job.results is not None:
            payload["specs"] = [spec.to_dict() for spec in job.specs]
            payload["results"] = [stats.to_dict() for stats in job.results]
            payload["telemetry"] = job.telemetry.to_dict()
        return payload


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the bound :class:`ExperimentService`."""

    server_version = f"repro-serve/{PROTOCOL_VERSION}"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"request body is not JSON: {error}") from error

    # -- routes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/v1/traces":
            query = {
                name: values[-1]
                for name, values in parse_qs(parsed.query).items()
            }
            self._trace_add(query)
            return
        if parsed.path != "/v1/jobs":
            self._send_json(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        try:
            request = parse_job_request(self._read_body())
            job = self.service.submit(request)
        except ProtocolError as error:
            self._send_json(400, {"error": str(error)})
        except QueueFull as error:
            self._send_json(429, {"error": str(error)}, headers=[("Retry-After", "1")])
        except ServiceDraining as error:
            self._send_json(503, {"error": str(error)})
        else:
            self._send_json(
                202,
                {
                    "protocol": PROTOCOL_VERSION,
                    "id": job.id,
                    "state": job.state,
                    "specs": len(job.specs),
                    "requested": job.requested,
                },
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        query = {
            name: values[-1] for name, values in parse_qs(parsed.query).items()
        }
        parts = [part for part in parsed.path.split("/") if part]
        if parts == ["v1", "health"]:
            self._send_json(
                200,
                {
                    "status": "draining" if self.service.draining else "ok",
                    "protocol": PROTOCOL_VERSION,
                },
            )
        elif parts == ["v1", "telemetry"]:
            self._send_json(200, self.service.telemetry_snapshot())
        elif parts == ["v1", "jobs"]:
            self._send_json(
                200, {"jobs": [job.summary() for job in self.service.jobs()]}
            )
        elif parts[:2] == ["v1", "jobs"] and len(parts) in (3, 4):
            self._job_route(parts, query)
        elif parts == ["v1", "store", "stats"]:
            self._store_stats()
        elif parts == ["v1", "runs"]:
            self._store_runs(query.get("kind"))
        elif parts == ["v1", "traces"]:
            catalog = self.service.catalog
            if catalog is None:
                self._send_json(404, {"error": "result store is disabled"})
                return
            records = catalog.ls()
            self._send_json(200, {"traces": records, "count": len(records)})
        elif parts[:2] == ["v1", "traces"] and len(parts) == 3:
            self._trace_get(parts[2])
        else:
            self._send_json(404, {"error": f"no such endpoint: {parsed.path}"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if parts[:2] != ["v1", "traces"] or len(parts) != 3:
            self._send_json(404, {"error": f"no such endpoint: {parsed.path}"})
            return
        catalog = self.service.catalog
        if catalog is None:
            self._send_json(404, {"error": "result store is disabled"})
            return
        from repro.common.errors import ReproError

        try:
            digest = catalog.resolve(parts[2])
        except ReproError as error:
            self._send_json(404, {"error": str(error)})
            return
        catalog.rm(digest)
        self._send_json(200, {"removed": digest})

    def _trace_add(self, query) -> None:
        import io

        from repro.common.errors import ReproError, TraceFormatError

        catalog = self.service.catalog
        if catalog is None:
            self._send_json(404, {"error": "result store is disabled"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            self._send_json(400, {"error": "empty request body"})
            return
        try:
            access_size = int(query.get("access_size", 4))
            record = catalog.add(
                io.BytesIO(raw),
                format=query.get("format", "auto"),
                name=query.get("name") or "<upload>",
                access_size=access_size,
            )
        except (TraceFormatError, ReproError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
            return
        status = 200 if record.get("duplicate") else 201
        record["workload"] = f"ingested:{record['hash']}"
        self._send_json(status, record)

    def _trace_get(self, digest: str) -> None:
        catalog = self.service.catalog
        if catalog is None:
            self._send_json(404, {"error": "result store is disabled"})
            return
        from repro.common.errors import ReproError

        try:
            record = catalog.get(catalog.resolve(digest))
        except ReproError as error:
            self._send_json(404, {"error": str(error)})
            return
        record["workload"] = f"ingested:{record['hash']}"
        self._send_json(200, record)

    def _job_route(self, parts, query) -> None:
        job = self.service.job(parts[2])
        if job is None:
            self._send_json(404, {"error": f"unknown job: {parts[2]}"})
            return
        if len(parts) == 3:
            self._send_json(200, job.summary())
        elif parts[3] == "result":
            status = 200 if job.state == "done" else 202
            if job.state == "failed":
                status = 200
            self._send_json(status, self.service.result_payload(job))
        elif parts[3] == "events":
            try:
                start = max(0, int(query.get("from", 0)))
            except ValueError:
                self._send_json(400, {"error": "'from' must be an integer"})
                return
            self._stream_events(job, start)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def _stream_events(self, job: Job, start: int) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        index = start
        try:
            while True:
                events, finished = job.wait_events(index, STREAM_KEEPALIVE)
                for event in events:
                    line = json.dumps(event, separators=(",", ":")) + "\n"
                    self.wfile.write(line.encode("utf-8"))
                index += len(events)
                if not events and not finished:
                    self.wfile.write(b'{"type":"keepalive"}\n')
                self.wfile.flush()
                if finished:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # reader went away; the job carries on regardless

    def _store_stats(self) -> None:
        store = self.service.store
        if store is None:
            self._send_json(404, {"error": "result store is disabled"})
            return
        self._send_json(200, store.stats())

    def _store_runs(self, kind: Optional[str]) -> None:
        store = self.service.store
        if store is None:
            self._send_json(404, {"error": "result store is disabled"})
            return
        records = store.records(kind=kind)
        self._send_json(200, {"records": records, "count": len(records)})


class ServiceServer:
    """The threading HTTP server bound to one :class:`ExperimentService`."""

    def __init__(
        self,
        service: ExperimentService,
        host: Optional[str] = None,
        port: Optional[int] = None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer(
            (host if host is not None else default_host(),
             port if port is not None else default_port()),
            _ServiceHandler,
        )
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> None:
        """Serve requests on a daemon thread (workers start too)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop the HTTP listener (drain the service first, normally)."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
