"""Job queue, in-flight spec ledger and service telemetry.

Three concerns the HTTP layer should not have to think about live here:

- :class:`Job` — one accepted submission's state machine
  (``queued -> running -> done | failed``) with a monotonically growing,
  condition-signalled event log that any number of stream readers can
  tail concurrently;
- :class:`JobQueue` — a *bounded* priority queue (full = HTTP 429
  back-pressure) that serves the highest priority first and, within one
  priority level, round-robins across client tokens so one chatty tenant
  cannot starve the rest;
- :class:`SpecLedger` — the cross-client coalescing table.  A job claims
  the specs nobody is currently computing and *subscribes* to the rest;
  whichever job owns a spec fulfills every subscriber when its result
  lands.  Claims are atomic per job and jobs only ever wait on earlier
  claims, so the wait graph is acyclic — no deadlock is possible.

Every counter the service reports rolls up in
:class:`ServiceTelemetry`; ``coalesced`` is the proof that overlapping
submissions shared one computation.
"""

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.serde import CounterSerde
from repro.exec.keys import ExperimentSpec
from repro.exec.pool import PoolTelemetry
from repro.service.protocol import JobRequest

#: Default bound on queued (accepted but not yet running) jobs.
DEFAULT_QUEUE_DEPTH = 64

#: Terminal job states.
FINISHED_STATES = ("done", "failed")


class QueueFull(RuntimeError):
    """The job queue is at its depth bound (HTTP 429)."""


class ServiceDraining(RuntimeError):
    """The service is draining and accepts no new jobs (HTTP 503)."""


@dataclass
class ServiceTelemetry(CounterSerde):
    """Service-lifetime counters (JSON-safe via ``to_dict``)."""

    submitted: int = 0  #: jobs accepted into the queue
    completed: int = 0  #: jobs that reached "done"
    failed: int = 0  #: jobs that reached "failed"
    rejected_full: int = 0  #: submissions bounced with 429 (queue full)
    rejected_draining: int = 0  #: submissions bounced with 503 (draining)
    coalesced: int = 0  #: specs served by joining another job's computation


class Job:
    """One accepted submission and everything observable about it."""

    _ids = iter(range(1, 10**9))
    _ids_lock = threading.Lock()

    def __init__(self, request: JobRequest) -> None:
        with Job._ids_lock:
            sequence = next(Job._ids)
        self.id = f"job-{sequence:06d}"
        self.specs: List[ExperimentSpec] = list(request.specs)
        self.requested = request.requested
        self.priority = request.priority
        self.token = request.token
        self.state = "queued"
        self.error: Optional[str] = None
        #: Results in spec order once done (list of stats dataclasses).
        self.results: Optional[List[object]] = None
        #: Pool counters for the specs this job computed itself.
        self.telemetry = PoolTelemetry()
        #: Specs resolved by joining another job's in-flight computation.
        self.coalesced = 0
        self.created = time.time()
        self.finished: Optional[float] = None
        self._events: List[dict] = []
        self._cond = threading.Condition()

    # -- event log -----------------------------------------------------------

    def add_event(self, event: dict) -> None:
        """Append one wire-format event and wake every stream reader."""
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def wait_events(self, start: int, timeout: float) -> Tuple[List[dict], bool]:
        """Events from index ``start`` on, blocking up to ``timeout``.

        Returns ``(new_events, finished)``; an empty list with
        ``finished=False`` means the timeout elapsed (stream keepalive).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if len(self._events) > start:
                    return list(self._events[start:]), self.state in FINISHED_STATES
                if self.state in FINISHED_STATES:
                    return [], True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._cond.wait(remaining)

    # -- state transitions ---------------------------------------------------

    def mark_running(self) -> None:
        with self._cond:
            self.state = "running"
            self._cond.notify_all()

    def finish(self, results: List[object]) -> None:
        with self._cond:
            self.results = results
            self.state = "done"
            self.finished = time.time()
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        with self._cond:
            self.error = f"{type(error).__name__}: {error}"
            self.state = "failed"
            self.finished = time.time()
            self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True) or times out."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self.state not in FINISHED_STATES:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def summary(self) -> dict:
        """The job as ``GET /v1/jobs`` reports it (no results payload)."""
        return {
            "id": self.id,
            "state": self.state,
            "specs": len(self.specs),
            "requested": self.requested,
            "priority": self.priority,
            "token": self.token,
            "coalesced": self.coalesced,
            "error": self.error,
            "created": self.created,
            "finished": self.finished,
        }


class JobQueue:
    """Bounded priority queue, fair across client tokens.

    ``pop`` serves the numerically highest priority first; within one
    priority level, tokens take strict turns (round-robin), so at equal
    priority a tenant that queued forty jobs and a tenant that queued one
    alternate instead of the forty running first.
    """

    def __init__(self, depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        self.depth = max(1, depth)
        self._cond = threading.Condition()
        #: priority -> (token -> deque of jobs); OrderedDict preserves the
        #: token arrival order that seeds the round-robin rotation.
        self._levels: Dict[int, "OrderedDict[str, deque]"] = {}
        #: priority -> rotation of tokens still holding queued jobs.
        self._rotations: Dict[int, deque] = {}
        self._size = 0
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def push(self, job: Job) -> None:
        """Enqueue one job; raises :class:`QueueFull` at the depth bound."""
        with self._cond:
            if self._closed:
                raise ServiceDraining("job queue is closed")
            if self._size >= self.depth:
                raise QueueFull(
                    f"job queue is full ({self._size}/{self.depth} queued)"
                )
            level = self._levels.setdefault(job.priority, OrderedDict())
            if job.token not in level:
                level[job.token] = deque()
                self._rotations.setdefault(job.priority, deque()).append(job.token)
            level[job.token].append(job)
            self._size += 1
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next job fairly; ``None`` on timeout or closed-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._size:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            priority = max(
                level_priority
                for level_priority, level in self._levels.items()
                if level
            )
            rotation = self._rotations[priority]
            level = self._levels[priority]
            token = rotation.popleft()
            job = level[token].popleft()
            self._size -= 1
            # The token goes to the back of the rotation only while it
            # still holds jobs; it re-enters on its next push otherwise.
            if level[token]:
                rotation.append(token)
            else:
                del level[token]
            if not level:
                del self._levels[priority]
                del self._rotations[priority]
            return job

    def close(self) -> None:
        """Refuse further pushes and wake blocked poppers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _SpecEntry:
    """One in-flight spec: the owner's promise of a result."""

    __slots__ = ("event", "stats", "error", "owner")

    def __init__(self, owner: str) -> None:
        self.event = threading.Event()
        self.stats: Optional[object] = None
        self.error: Optional[BaseException] = None
        self.owner = owner


class SpecLedger:
    """The cross-client coalescing table of in-flight computations.

    A worker *claims* its job's specs atomically: specs nobody else is
    computing become claims (this job will compute and fulfill them);
    specs another job already claimed come back as subscriptions to that
    job's entries.  Entries leave the table the moment they resolve, so a
    later job with the same spec goes to the store (warm) instead of
    waiting on a spent entry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[ExperimentSpec, _SpecEntry] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def claim(
        self, specs, owner: str
    ) -> Tuple[List[ExperimentSpec], Dict[ExperimentSpec, _SpecEntry]]:
        """Split ``specs`` into (claimed by ``owner``, subscribed)."""
        claimed: List[ExperimentSpec] = []
        shared: Dict[ExperimentSpec, _SpecEntry] = {}
        with self._lock:
            for spec in specs:
                entry = self._entries.get(spec)
                if entry is not None:
                    shared[spec] = entry
                else:
                    self._entries[spec] = _SpecEntry(owner)
                    claimed.append(spec)
        return claimed, shared

    def fulfill(self, spec: ExperimentSpec, stats: object) -> None:
        """Resolve one claimed spec; wakes every subscriber."""
        with self._lock:
            entry = self._entries.pop(spec, None)
        if entry is not None:
            entry.stats = stats
            entry.event.set()

    def release(self, spec: ExperimentSpec, error: BaseException) -> None:
        """Resolve one claimed spec as failed; subscribers recompute."""
        with self._lock:
            entry = self._entries.pop(spec, None)
        if entry is not None:
            entry.error = error
            entry.event.set()
