"""Thin ``urllib``-based client for the experiment service.

:class:`ServiceClient` wraps the JSON endpoints of
:class:`~repro.service.app.ServiceServer` so callers (the ``repro
submit``/``jobs``/``watch`` subcommands, tests, scripts) never touch
HTTP by hand.  Responses decode back into the same dataclasses a local
run produces: :meth:`result` pairs each returned stats payload with its
spec's kind and rebuilds the registered ``stats_type`` — bit-identical
to calling the pool directly.

Failures surface as :class:`ServiceError`, which keeps the HTTP status
(``429`` = queue full, retry later; ``503`` = draining, go elsewhere;
``400`` = the request itself is malformed).
"""

import json
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.exec.keys import ExperimentSpec
from repro.exec.pool import PoolTelemetry
from repro.service.protocol import decode_stats

#: Default per-request timeout; event streams wait far longer server-side
#: but emit keepalive lines well inside this window.
DEFAULT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One service endpoint, addressed as ``http://host:port``."""

    def __init__(self, url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, path: str, payload: Optional[dict] = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(self.url + path, data=data, headers=headers)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServiceError(
                f"{path}: HTTP {error.code}" + (f": {detail}" if detail else ""),
                status=error.code,
            ) from error
        except URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.url}: {error.reason}"
            ) from error

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("/v1/health")

    def telemetry(self) -> dict:
        return self._request("/v1/telemetry")

    def submit(self, payload: dict) -> dict:
        """POST one job request; returns ``{"id", "state", "specs", ...}``."""
        return self._request("/v1/jobs", payload=payload)

    def jobs(self) -> List[dict]:
        return self._request("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request(f"/v1/jobs/{job_id}")

    def raw_result(self, job_id: str) -> dict:
        """The result payload as served (specs/stats still wire dicts)."""
        return self._request(f"/v1/jobs/{job_id}/result")

    def result(
        self, job_id: str
    ) -> Tuple[List[Tuple[ExperimentSpec, object]], PoolTelemetry]:
        """A finished job's ``[(spec, stats), ...]`` plus its telemetry.

        Raises :class:`ServiceError` if the job failed or is not done yet.
        """
        payload = self.raw_result(job_id)
        if payload.get("state") != "done":
            raise ServiceError(
                f"job {job_id} is {payload.get('state')}"
                + (f": {payload['error']}" if payload.get("error") else "")
            )
        pairs = []
        for spec_payload, stats_payload in zip(
            payload["specs"], payload["results"]
        ):
            spec = ExperimentSpec.from_dict(spec_payload)
            pairs.append((spec, decode_stats(spec.kind, stats_payload)))
        telemetry = PoolTelemetry.from_dict(payload["telemetry"])
        return pairs, telemetry

    def events(self, job_id: str, start: int = 0) -> Iterator[dict]:
        """Stream a job's NDJSON events (keepalives filtered out).

        Yields decoded event dicts until the server closes the stream at
        the job's terminal event.
        """
        request = Request(
            f"{self.url}/v1/jobs/{job_id}/events?from={start}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            # No read timeout beyond the platform default: the server
            # emits keepalives every few seconds, so a healthy stream is
            # never silent for long.
            response = urlopen(request, timeout=max(self.timeout, 60.0))
        except HTTPError as error:
            raise ServiceError(
                f"events: HTTP {error.code}", status=error.code
            ) from error
        except URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.url}: {error.reason}"
            ) from error
        with response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("type") == "keepalive":
                    continue
                yield event

    def wait(self, job_id: str, poll: float = 0.2) -> dict:
        """Block (by polling) until the job is terminal; returns its summary."""
        import time

        while True:
            summary = self.job(job_id)
            if summary["state"] in ("done", "failed"):
                return summary
            time.sleep(poll)

    def store_stats(self) -> Dict[str, object]:
        return self._request("/v1/store/stats")

    def runs(self, kind: Optional[str] = None) -> List[dict]:
        path = "/v1/runs" + (f"?kind={kind}" if kind else "")
        return self._request(path)["records"]
