"""Deterministic fault injection for the experiment pipeline.

The fault-tolerance machinery in :class:`~repro.exec.pool.ExperimentPool`
(retries, per-task deadlines, pool rebuilds, batch bisection) only earns
its keep if it can be *tested* — and worker crashes, stalls and torn
store writes do not happen on demand.  This module makes them happen on
demand, deterministically: a :class:`FaultPlan` is a seeded list of
:class:`FaultRule` entries, and whether a rule fires for a given
:class:`~repro.exec.keys.ExperimentSpec` is a pure function of
``(plan seed, rule index, spec digest, attempt number)``.  The same plan
therefore injects the same faults in every process, on every platform,
under any worker count — which is what lets the chaos suite assert that
a faulted sweep still produces results bit-identical to a clean one.

Fault modes (``FaultRule.mode``):

- ``"raise"`` — the executing side raises :class:`InjectedFault` before
  running the simulation (models a worker hitting a transient error);
- ``"exit"`` — the worker dies hard via ``os._exit`` (models OOM kills
  and segfaults; breaks the whole process pool).  Worker-only: never
  fires in the parent process, so inline degradation stays safe;
- ``"stall"`` — the worker sleeps past any reasonable deadline (models
  hangs; exercises the pool's per-task timeout).  Worker-only;
- ``"corrupt"`` — the simulation runs, but the returned stats are
  perturbed *after* the result checksum is sealed, so the receiving side
  detects the mismatch and retries (models transport corruption);
- ``"torn-write"`` — a :meth:`ResultStore.put` writes a truncated record
  straight to its final path and fails (models a crash mid-write without
  the atomic-rename protection); the next read finds the torn record,
  quarantines it and recomputes.

A rule fires for the first ``times`` attempts of each matched spec and
then stays quiet, so retried work recovers — the point is injecting
faults the machinery must survive, not unwinnable ones.  ``rate`` < 1
selects a deterministic pseudo-random subset of specs (hashed, not
sampled); ``match`` restricts a rule to specs whose canonical string
contains the substring (e.g. ``"workload=ccom"`` or ``"size=4096"``).

Activation: set ``$REPRO_FAULT_PLAN`` to a JSON plan (or a path to one),
or hand a plan to ``ExperimentPool(faults=...)``.  When no plan is
active every injection point reduces to one ``is None`` test per *task*
(nothing per reference), so the framework costs nothing in production —
``benchmarks/bench_simulator.py --fault-overhead-check`` asserts the
disabled gate stays under 1% of the cheapest real simulation.
"""

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Environment variable holding a JSON fault plan, or a path to one.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: The fault modes a rule may name.
FAULT_MODES = ("raise", "exit", "stall", "corrupt", "torn-write")

#: Modes that kill or wedge the executing process; these only ever fire
#: in worker processes (``multiprocessing.parent_process() is not None``)
#: so the pool's serial and inline-degradation paths cannot be taken down.
_WORKER_ONLY_MODES = frozenset(("exit", "stall"))


class InjectedFault(RuntimeError):
    """An error raised (or reported) by deliberate fault injection."""


class ResultIntegrityError(RuntimeError):
    """A result's checksum did not match its payload (corrupt in transit)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: what to inject, where, and how often."""

    mode: str
    rate: float = 1.0  #: fraction of matched specs the rule selects
    times: int = 1  #: fire on the first N attempts of a selected spec
    match: str = ""  #: substring of the spec's canonical string ("" = all)
    stall_seconds: float = 30.0  #: sleep length for ``stall``
    exit_code: int = 13  #: status for ``exit``

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("fault rate must be within [0, 1]")
        if self.times < 1:
            raise ConfigurationError("fault times must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "rate": self.rate,
            "times": self.times,
            "match": self.match,
            "stall_seconds": self.stall_seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultRule":
        unknown = set(raw) - {
            "mode", "rate", "times", "match", "stall_seconds", "exit_code"
        }
        if unknown:
            raise ConfigurationError(
                f"unknown fault rule fields: {sorted(unknown)}"
            )
        return cls(**raw)


def _unit_hash(token: str) -> float:
    """A stable hash of ``token`` mapped onto [0, 1)."""
    return zlib.crc32(token.encode("utf-8")) / 2**32


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, content-addressed set of fault rules.

    Whether rule ``i`` selects a spec is decided by hashing
    ``(seed, i, spec digest)`` against the rule's ``rate`` — the same
    decision in every process, with no mutable state to ship to workers.
    Attempt numbers come from the caller (the pool tracks per-spec
    attempts), so a retried spec deterministically escapes a rule once
    its ``times`` budget is spent.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultPlan":
        unknown = set(raw) - {"seed", "rules"}
        if unknown:
            raise ConfigurationError(f"unknown fault plan fields: {sorted(unknown)}")
        rules = tuple(FaultRule.from_dict(rule) for rule in raw.get("rules", ()))
        return cls(seed=int(raw.get("seed", 0)), rules=rules)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ConfigurationError("fault plan JSON must be an object")
        return cls.from_dict(raw)

    # -- decisions ----------------------------------------------------------

    def rule_for(self, spec, attempt: int, modes=None) -> Optional[FaultRule]:
        """The first rule firing for ``spec`` on this (0-based) attempt.

        ``modes`` restricts the lookup to a subset of fault modes (the
        execution path and the store-write path consult different sets).
        """
        canonical = None
        digest = None
        for index, rule in enumerate(self.rules):
            if modes is not None and rule.mode not in modes:
                continue
            if attempt >= rule.times:
                continue
            if rule.match:
                if canonical is None:
                    canonical = spec.canonical()
                if rule.match not in canonical:
                    continue
            if rule.rate < 1.0:
                if digest is None:
                    digest = spec.digest()
                if _unit_hash(f"{self.seed}:{index}:{digest}") >= rule.rate:
                    continue
            return rule
        return None


# ---------------------------------------------------------------------------
# Active-plan plumbing.
# ---------------------------------------------------------------------------

#: ``False`` = not yet resolved from the environment (``None`` is a valid
#: resolved value: no plan active).
_active = False


def _load_env_plan() -> Optional[FaultPlan]:
    raw = os.environ.get(ENV_FAULT_PLAN)
    if not raw or not raw.strip():
        return None
    text = raw.strip()
    if not text.startswith("{"):
        try:
            text = open(text, encoding="utf-8").read()
        except OSError as exc:
            raise ConfigurationError(
                f"${ENV_FAULT_PLAN} names an unreadable plan file: {exc}"
            ) from exc
    return FaultPlan.from_json(text)


def active_plan() -> Optional[FaultPlan]:
    """The process-wide fault plan (``$REPRO_FAULT_PLAN``), or ``None``."""
    global _active
    if _active is False:
        _active = _load_env_plan()
    return _active


def set_active_plan(plan: Optional[FaultPlan]) -> None:
    """Override the process-wide plan (tests; ``None`` disables)."""
    global _active
    _active = plan


def reset_active_plan() -> None:
    """Re-resolve the plan from the environment on next use."""
    global _active
    _active = False


def _in_worker() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


# ---------------------------------------------------------------------------
# Injection points.  Each is a no-op single ``is None`` test when no plan
# is active; the pool calls them once per task, never per reference.
# ---------------------------------------------------------------------------


def fire_execution_fault(plan: Optional[FaultPlan], spec, attempt: int) -> None:
    """Raise/exit/stall before a simulation runs, if the plan says so."""
    if plan is None:
        return
    rule = plan.rule_for(spec, attempt, modes=("raise", "exit", "stall"))
    if rule is None:
        return
    if rule.mode in _WORKER_ONLY_MODES and not _in_worker():
        return
    if rule.mode == "raise":
        raise InjectedFault(
            f"injected raise for {spec.describe()} (attempt {attempt + 1})"
        )
    if rule.mode == "exit":
        os._exit(rule.exit_code)
    time.sleep(rule.stall_seconds)  # "stall": finish late, past any deadline


def corrupt_result(plan: Optional[FaultPlan], spec, attempt: int, stats):
    """Return ``stats`` perturbed if a ``corrupt`` rule fires, else as-is.

    Called *after* :func:`result_checksum` sealed the honest payload, so
    the receiver's checksum verification catches the perturbation.
    """
    if plan is None:
        return stats
    rule = plan.rule_for(spec, attempt, modes=("corrupt",))
    if rule is None:
        return stats
    payload = stats.to_dict()
    _bump_first_counter(payload)
    return type(stats).from_dict(payload)


def _bump_first_counter(payload: Dict) -> bool:
    """Perturb the first numeric leaf of a (possibly nested) stats dict."""
    for key, value in payload.items():
        if isinstance(value, dict):
            if _bump_first_counter(value):
                return True
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            payload[key] = value + 1
            return True
    return False


def store_write_rule(plan: Optional[FaultPlan], spec) -> Optional[FaultRule]:
    """The ``torn-write`` rule firing for this store write, if any.

    Store writes happen in the parent (results are persisted as they
    stream back), so attempts are tracked process-locally here rather
    than threaded through worker calls.
    """
    if plan is None:
        return None
    attempt = _store_write_attempts.get(spec, 0)
    rule = plan.rule_for(spec, attempt, modes=("torn-write",))
    if rule is not None:
        _store_write_attempts[spec] = attempt + 1
    return rule


#: Parent-side count of torn-write firings per spec (bounds ``times``).
_store_write_attempts: Dict[object, int] = {}


def reset_store_write_attempts() -> None:
    """Forget torn-write firing history (test isolation)."""
    _store_write_attempts.clear()


# ---------------------------------------------------------------------------
# Result integrity.
# ---------------------------------------------------------------------------


def result_checksum(stats) -> int:
    """A stable checksum of a stats object's full counter payload."""
    payload = json.dumps(stats.to_dict(), sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


def verify_result(spec, stats, checksum: Optional[int]) -> None:
    """Raise :class:`ResultIntegrityError` when a sealed checksum mismatches."""
    if checksum is None:
        return
    if result_checksum(stats) != checksum:
        raise ResultIntegrityError(
            f"result for {spec.describe()} failed its integrity check"
        )


def retry_delay(
    spec, attempt: int, base: float, cap: float = 2.0, seed: int = 0
) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``attempt`` is the number of failed tries so far (>= 1).  Jitter is
    hashed from the spec digest, not drawn from global RNG state, so retry
    schedules are reproducible run to run.
    """
    if base <= 0.0:
        return 0.0
    jitter = 0.75 + 0.5 * _unit_hash(f"backoff:{seed}:{spec.digest()}:{attempt}")
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)
