"""Parallel experiment execution with dedup, persistence and telemetry.

:class:`ExperimentPool` takes a batch of
:class:`~repro.exec.keys.ExperimentSpec` requests — of any mix of
registered kinds — and resolves each through a three-level lookup: an
in-memory memo (shared with :mod:`repro.core.runner`), the on-disk
:class:`~repro.exec.store.ResultStore`, and finally computation via the
kind's registered runner (see :mod:`repro.exec.experiments`) — inline for
``jobs=1``, or fanned out across a ``ProcessPoolExecutor`` for
``jobs>1``.  Duplicate specs are collapsed before any work is scheduled,
freshly computed results are persisted as they stream back, and every
resolution emits a :class:`RunEvent` through a pluggable callback (see
:func:`verbose_reporter` for the ``--verbose`` CLI hook).

Traces travel to workers as zero-copy shared-memory pages
(:mod:`repro.exec.shm`): the parent builds each distinct trace once and
workers map the page instead of re-running the workload generator.
Because pages are keyed by (workload, scale, seed), a mixed-kind batch
over the same workload ships each trace exactly once, whatever kinds
consume it.  When shared memory is unavailable, workers fall back to
regenerating from the deterministic generators — either way parallel
results are bit-identical to serial execution, which the test suite
enforces per kind.

Kinds that register a batch runner (the ``cache`` kind does, via
``repro.cache.fastsim.simulate_trace_batch``) get *batched dispatch*:
pending misses of such a kind that agree on ``(workload, scale, seed,
flush)`` travel to a worker as one task, so the batched kernel shares
the trace-side passes across the whole configuration grid.  Results stay
per-spec — each is individually content-addressed, persisted and
reported through the same :class:`RunEvent` path as an unbatched run.
Set ``$REPRO_SIM_BATCH=0`` (or construct the pool with ``batch=False``)
to force per-run dispatch when debugging.

Failure semantics (see "Failure semantics" in ``docs/orchestration.md``):
a failed task is retried with exponential backoff and deterministic
jitter up to ``retries`` times; a task running past ``task_timeout``
seconds is abandoned and the worker pool rebuilt; a hard worker death
(``BrokenProcessPool``) rebuilds the pool and requeues the in-flight
work; and a failing *batched* task is bisected so one poisoned spec
cannot lose its siblings' grid.  When per-run retries are exhausted the
spec is executed serially inline in the parent as a last resort, and
only an inline failure finally propagates.  Every recovery is counted in
:class:`PoolTelemetry` (``retries``/``timeouts``/``pool_rebuilds``/
``degraded_runs``) and reported through ``retry``/``timeout``
:class:`RunEvent` entries carrying attempt numbers.  The deterministic
fault-injection framework driving the chaos suite lives in
:mod:`repro.exec.faults`.
"""

import heapq
import os
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.serde import CounterSerde
from repro.exec import faults as faults_module
from repro.exec.experiments import get_kind
from repro.exec.keys import ExperimentSpec
from repro.exec.store import ResultStore

#: Environment variable setting the default worker count.
ENV_JOBS = "REPRO_JOBS"

#: Environment variable disabling batched dispatch ("0"/"false"/"off").
ENV_BATCH = "REPRO_SIM_BATCH"

#: Environment variable setting the default per-task retry budget.
ENV_RETRIES = "REPRO_RETRIES"

#: Environment variable setting the default per-task deadline (seconds).
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"

#: Fallback retry budget when neither the CLI nor the environment says.
DEFAULT_RETRIES = 2

#: Base backoff delay (seconds) before a retry; doubles per attempt with
#: deterministic jitter (see :func:`repro.exec.faults.retry_delay`).
DEFAULT_BACKOFF = 0.05


def batching_default() -> bool:
    """Whether pools batch by default: on unless ``$REPRO_SIM_BATCH`` opts out."""
    return os.environ.get(ENV_BATCH, "1").strip().lower() not in ("0", "false", "off")


#: Process-wide override set by ``--jobs`` CLI flags (None = use $REPRO_JOBS).
_default_jobs_override: Optional[int] = None

#: Sentinel distinguishing "no override" from an explicit ``None`` override.
_UNSET = object()

#: Process-wide overrides set by ``--retries``/``--task-timeout`` CLI flags.
_default_retries_override = _UNSET
_default_timeout_override = _UNSET


def set_default_jobs(jobs: Optional[int]) -> None:
    """Override the default worker count for this process (0 = all cores)."""
    global _default_jobs_override
    _default_jobs_override = jobs


def default_jobs() -> int:
    """Worker count: CLI override, else ``$REPRO_JOBS`` (0 = all cores), else 1."""
    if _default_jobs_override is not None:
        jobs = _default_jobs_override
    else:
        raw = os.environ.get(ENV_JOBS)
        if not raw:
            return 1
        jobs = int(raw)
    return os.cpu_count() or 1 if jobs == 0 else max(1, jobs)


def set_default_fault_policy(retries=_UNSET, task_timeout=_UNSET) -> None:
    """Override the process defaults for ``--retries``/``--task-timeout``.

    Arguments left at the sentinel keep their current override; passing
    ``None`` explicitly restores resolution from the environment.
    """
    global _default_retries_override, _default_timeout_override
    if retries is not _UNSET:
        _default_retries_override = _UNSET if retries is None else retries
    if task_timeout is not _UNSET:
        _default_timeout_override = _UNSET if task_timeout is None else task_timeout


def default_retries() -> int:
    """Per-task retry budget: CLI override, else ``$REPRO_RETRIES``, else 2."""
    if _default_retries_override is not _UNSET:
        return max(0, int(_default_retries_override))
    raw = os.environ.get(ENV_RETRIES)
    return max(0, int(raw)) if raw else DEFAULT_RETRIES


def default_task_timeout() -> Optional[float]:
    """Per-task deadline in seconds (None = wait forever, the default)."""
    if _default_timeout_override is not _UNSET:
        value = float(_default_timeout_override)
        return value if value > 0 else None
    raw = os.environ.get(ENV_TASK_TIMEOUT)
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


@dataclass(frozen=True)
class RunEvent:
    """One resolution or recovery step, reported through the callback.

    ``source`` is ``"memory"``/``"store"``/``"computed"`` for resolutions
    (these advance ``completed``) and ``"retry"``/``"timeout"`` for
    recoveries (these do not — a retried run is never reported as two
    completions).  ``attempt`` is the 1-based try number the event refers
    to: the failed try for a recovery event, the successful try for a
    resolution.  ``degraded`` marks work resolved through a degraded path
    (a bisected batch half or the serial-inline fallback).
    """

    source: str  #: "memory", "store", "computed", "retry" or "timeout"
    key: ExperimentSpec
    seconds: float  #: simulation wall-time (0 for memory/store hits)
    completed: int  #: runs resolved so far, this batch
    total: int  #: deduplicated batch size
    attempt: int = 1  #: 1-based try number this event refers to
    degraded: bool = False  #: resolved via bisected-half or inline fallback

    def to_dict(self) -> dict:
        """JSON-safe payload (the spec nests via its own serde)."""
        return {
            "source": self.source,
            "key": self.key.to_dict(),
            "seconds": self.seconds,
            "completed": self.completed,
            "total": self.total,
            "attempt": self.attempt,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEvent":
        """Inverse of :meth:`to_dict`; unknown keys raise, missing default."""
        known = {
            "source", "key", "seconds", "completed", "total", "attempt",
            "degraded",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown RunEvent fields: {sorted(unknown)}")
        return cls(
            source=str(payload["source"]),
            key=ExperimentSpec.from_dict(payload["key"]),
            seconds=float(payload["seconds"]),
            completed=int(payload["completed"]),
            total=int(payload["total"]),
            attempt=int(payload.get("attempt", 1)),
            degraded=bool(payload.get("degraded", False)),
        )


@dataclass
class PoolTelemetry(CounterSerde):
    """Aggregate counters for one :meth:`ExperimentPool.run_many` batch.

    Flat counters, so JSON round-trips come free via
    :class:`~repro.common.serde.CounterSerde` (``to_dict``/``from_dict``);
    the experiment service ships these over the wire per job.
    """

    requested: int = 0  #: keys passed in, duplicates included
    deduplicated: int = 0  #: unique keys actually resolved
    memory_hits: int = 0
    store_hits: int = 0
    computed: int = 0
    sim_seconds: float = 0.0  #: summed per-run simulation wall-time
    wall_seconds: float = 0.0  #: end-to-end batch wall-time
    batches: int = 0  #: batched tasks dispatched (groups of >= 2 runs)
    batched_runs: int = 0  #: runs resolved through a batched task
    retries: int = 0  #: failed tries that were retried (incl. persist retries)
    timeouts: int = 0  #: tasks abandoned past their deadline
    pool_rebuilds: int = 0  #: worker pools torn down and recreated
    degraded_runs: int = 0  #: runs resolved via bisected halves or inline
    profiled_runs: int = 0  #: runs served from a reuse-distance ladder profile
    profile_passes: int = 0  #: profiling passes paid (one per ladder line size)
    hier_vector_runs: int = 0  #: hierarchy runs vectorized level-by-level

    @property
    def runs_per_batch(self) -> float:
        """Mean grid size per batched task (0.0 when nothing batched)."""
        return self.batched_runs / self.batches if self.batches else 0.0

    def add(self, other: "PoolTelemetry") -> None:
        """Fold another batch's counters into this one."""
        self.requested += other.requested
        self.deduplicated += other.deduplicated
        self.memory_hits += other.memory_hits
        self.store_hits += other.store_hits
        self.computed += other.computed
        self.sim_seconds += other.sim_seconds
        self.wall_seconds += other.wall_seconds
        self.batches += other.batches
        self.batched_runs += other.batched_runs
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.pool_rebuilds += other.pool_rebuilds
        self.degraded_runs += other.degraded_runs
        self.profiled_runs += other.profiled_runs
        self.profile_passes += other.profile_passes
        self.hier_vector_runs += other.hier_vector_runs

    def line(self) -> str:
        """Stable machine-greppable summary (CI asserts on ``computed=``)."""
        return (
            f"requested={self.requested} deduplicated={self.deduplicated} "
            f"memory={self.memory_hits} store={self.store_hits} "
            f"computed={self.computed} sim_s={self.sim_seconds:.2f} "
            f"wall_s={self.wall_seconds:.2f} batches={self.batches} "
            f"batched_runs={self.batched_runs} "
            f"runs_per_batch={self.runs_per_batch:.1f} "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"pool_rebuilds={self.pool_rebuilds} "
            f"degraded_runs={self.degraded_runs} "
            f"profiled_runs={self.profiled_runs} "
            f"profile_passes={self.profile_passes} "
            f"hier_vector_runs={self.hier_vector_runs}"
        )


#: Process-wide running total across every batch (any pool instance).
#: Lets multi-batch commands (``repro figures`` renders several figures,
#: each prefetching its own grid) report one summary line CI can grep.
_aggregate = PoolTelemetry()


def aggregate_telemetry() -> PoolTelemetry:
    """The process-wide telemetry total (all batches since last reset)."""
    return _aggregate


def reset_aggregate_telemetry() -> PoolTelemetry:
    """Zero the process-wide total; returns the new (empty) instance."""
    global _aggregate
    _aggregate = PoolTelemetry()
    return _aggregate


class _Task:
    """One schedulable unit of pending work: a batched group or a single.

    ``degraded`` marks tasks produced by the degradation ladder (bisected
    halves, inline fallbacks); their resolutions count in
    ``PoolTelemetry.degraded_runs``.  ``inline`` forces execution in the
    parent process — the last rung of the ladder.
    """

    __slots__ = ("specs", "batched", "degraded", "inline")

    def __init__(self, specs, batched, degraded=False, inline=False):
        self.specs = list(specs)
        self.batched = batched
        self.degraded = degraded
        self.inline = inline

    def as_inline(self) -> "_Task":
        return _Task(self.specs, self.batched, degraded=True, inline=True)


def _execute(spec: ExperimentSpec, attempt: int = 0, plan=None) -> Tuple[object, float, Optional[int]]:
    """Run one experiment; used both inline and inside worker processes.

    Dispatches through the kind registry, so worker processes resolve the
    same runner the parent would (builtin kinds register lazily on first
    lookup in each process).  ``plan`` is the active fault plan (None in
    production — every fault hook then reduces to a single ``is None``
    test); the returned checksum seals the honest payload so the parent
    can detect results corrupted in transit.
    """
    from repro.trace.corpus import load

    runner = get_kind(spec.kind).runner
    faults_module.fire_execution_fault(plan, spec, attempt)
    trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    stats = runner(spec, trace)
    seconds = time.perf_counter() - started
    checksum = None
    if plan is not None:
        checksum = faults_module.result_checksum(stats)
        stats = faults_module.corrupt_result(plan, spec, attempt, stats)
    return stats, seconds, checksum


def _execute_shared(spec: ExperimentSpec, handle, attempt: int = 0, plan=None) -> Tuple[object, float, Optional[int]]:
    """Run one experiment against a trace shipped in shared memory.

    Falls back to regenerating the trace if the page cannot be mapped or
    fails validation (e.g. the platform lacks POSIX shared memory, or the
    page is smaller than the handle promises) — the results are
    bit-identical either way, only slower.
    """
    from repro.exec.shm import attach_trace
    from repro.trace.corpus import load

    runner = get_kind(spec.kind).runner
    faults_module.fire_execution_fault(plan, spec, attempt)
    try:
        trace = attach_trace(handle)
    except (OSError, ValueError):
        trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    stats = runner(spec, trace)
    seconds = time.perf_counter() - started
    checksum = None
    if plan is not None:
        checksum = faults_module.result_checksum(stats)
        stats = faults_module.corrupt_result(plan, spec, attempt, stats)
    return stats, seconds, checksum


def _execute_batch(specs, handle, attempts=None, plan=None) -> Tuple[list, float, Optional[list], Optional[dict]]:
    """Run a group of same-trace specs through their kind's batch runner.

    ``handle`` is an optional shared-memory trace handle (None means
    regenerate in-process); ``attempts`` aligns per-spec attempt numbers
    with ``specs`` for fault decisions.  Returns the per-spec stats list
    in spec order, the wall-time of the whole batched call, per-spec
    integrity checksums when a fault plan is active, and the kind's
    dispatch counters (``None`` for kinds without an
    ``info_batch_runner``) — a plain dict so the tuple pickles cleanly
    back from worker processes.
    """
    from repro.trace.corpus import load

    kind = get_kind(specs[0].kind)
    if plan is not None:
        if attempts is None:
            attempts = [0] * len(specs)
        for spec, attempt in zip(specs, attempts):
            faults_module.fire_execution_fault(plan, spec, attempt)
    trace = None
    if handle is not None:
        from repro.exec.shm import attach_trace

        try:
            trace = attach_trace(handle)
        except (OSError, ValueError):
            trace = None
    if trace is None:
        spec = specs[0]
        trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    if kind.info_batch_runner is not None:
        stats_list, info = kind.info_batch_runner(specs, trace)
        stats_list = list(stats_list)
    else:
        stats_list = list(kind.batch_runner(specs, trace))
        info = None
    seconds = time.perf_counter() - started
    if len(stats_list) != len(specs):
        raise RuntimeError(
            f"batch runner for kind {kind.name!r} returned "
            f"{len(stats_list)} results for {len(specs)} specs"
        )
    checksums = None
    if plan is not None:
        checksums = [faults_module.result_checksum(stats) for stats in stats_list]
        stats_list = [
            faults_module.corrupt_result(plan, spec, attempt, stats)
            for spec, attempt, stats in zip(specs, attempts, stats_list)
        ]
    return stats_list, seconds, checksums, info


def _abandon_executor(executor) -> None:
    """Tear an executor down without waiting on stuck or dead workers.

    The worker list must be captured *before* ``shutdown`` — CPython
    clears ``_processes`` even with ``wait=False``, and a stalled worker
    that never gets its SIGTERM outlives the sweep and blocks interpreter
    exit behind the executor's non-daemon management thread.
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
        except Exception:
            pass


def verbose_reporter(stream=None) -> Callable[[RunEvent], None]:
    """A callback printing one progress line per resolution or recovery.

    Retries and timeouts print as their own labelled lines carrying the
    attempt number that failed — a retried run is never shown as two
    anonymous completions — and its eventual resolution notes the attempt
    that succeeded plus a ``[degraded]`` marker when it came through a
    bisected batch half or the serial-inline fallback.
    """

    def report(event: RunEvent) -> None:
        out = stream if stream is not None else sys.stderr
        label = {
            "memory": "memo ",
            "store": "store",
            "computed": "sim  ",
            "retry": "retry",
            "timeout": "stall",
        }[event.source]
        timing = f" ({event.seconds:.2f}s)" if event.source == "computed" else ""
        if event.source in ("retry", "timeout"):
            suffix = f" (attempt {event.attempt} failed)"
        elif event.attempt > 1:
            suffix = f" (attempt {event.attempt})"
        else:
            suffix = ""
        if event.degraded:
            suffix += " [degraded]"
        print(
            f"[{event.completed}/{event.total}] {label} "
            f"{event.key.describe()}{timing}{suffix}",
            file=out,
        )

    return report


class ExperimentPool:
    """Batch runner: memory -> disk -> compute, optionally in parallel."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        callback: Optional[Callable[[RunEvent], None]] = None,
        batch: Optional[bool] = None,
        retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
        backoff: Optional[float] = None,
        faults=None,
    ) -> None:
        self.store = store
        self.jobs = max(1, jobs)
        self.callback = callback
        self.batch = batching_default() if batch is None else bool(batch)
        self.retries = default_retries() if retries is None else max(0, retries)
        self.task_timeout = (
            default_task_timeout() if task_timeout is None else task_timeout
        )
        self.backoff = DEFAULT_BACKOFF if backoff is None else max(0.0, backoff)
        self.faults = faults_module.active_plan() if faults is None else faults
        # An explicit plan handed to the pool also drives torn-write
        # injection in its store (an env-activated plan reaches the store
        # on its own through faults.active_plan()).
        if store is not None and faults is not None:
            store.faults = faults
        self.telemetry = PoolTelemetry()
        # Serializes whole run_many() batches: concurrent callers (the
        # experiment service's job workers) queue here instead of racing
        # on callback/telemetry state.  Reentrant so a caller may hold it
        # across a batch to read self.telemetry atomically afterwards.
        self._lock = threading.RLock()

    def _emit(
        self, source, key, seconds, completed, total, attempt=1, degraded=False
    ) -> None:
        if self.callback is not None:
            self.callback(
                RunEvent(source, key, seconds, completed, total, attempt, degraded)
            )

    @staticmethod
    def _export_traces(pending):
        """Build each distinct pending trace once and publish it in shared
        memory; ``{}`` (falling back to in-worker regeneration) if the
        platform refuses shared memory."""
        from repro.exec.shm import export_trace
        from repro.trace.corpus import load

        exported = {}
        try:
            for spec in pending:
                identity = (spec.workload, spec.scale, spec.seed)
                if identity not in exported:
                    exported[identity] = export_trace(
                        load(spec.workload, scale=spec.scale, seed=spec.seed)
                    )
        except OSError:
            for shared in exported.values():
                shared.close()
                shared.unlink()
            return {}
        return exported

    def _plan_batches(self, pending):
        """Split pending misses into batched groups and per-run singles.

        Specs of a kind with a registered batch runner group by
        ``(kind, workload, scale, seed, flush)`` — everything a batch
        runner is allowed to assume is shared.  Only groups of two or
        more become batched tasks; a group of one gains nothing from the
        batch entry point, so it stays on the plain per-run path.
        """
        if not self.batch:
            return [], list(pending)
        groups: Dict[tuple, list] = {}
        singles = []
        for spec in pending:
            if get_kind(spec.kind).batch_runner is None:
                singles.append(spec)
                continue
            identity = (spec.kind, spec.workload, spec.scale, spec.seed, spec.flush)
            groups.setdefault(identity, []).append(spec)
        batches = []
        for specs in groups.values():
            if len(specs) > 1:
                batches.append(specs)
            else:
                singles.append(specs[0])
        return batches, singles

    def _persist(self, key: ExperimentSpec, stats) -> bool:
        """Persist one result, retrying a failed write once.

        A store write that keeps failing (disk full, torn-write fault
        still firing) degrades gracefully: the in-memory result is still
        returned and a warm rerun simply recomputes the record.
        """
        try:
            self.store.put(key, stats)
            return True
        except Exception:
            self.telemetry.retries += 1
        try:
            self.store.put(key, stats)
            return True
        except Exception:
            self.telemetry.degraded_runs += 1
            return False

    @property
    def lock(self) -> "threading.RLock":
        """The reentrant lock serializing this pool's batches.

        Callers that need the batch *and* its telemetry atomically under
        concurrency hold it across both::

            with pool.lock:
                results = pool.run_many(specs, memo=memo)
                telemetry = pool.telemetry
        """
        return self._lock

    def run_many(
        self,
        keys: Iterable[ExperimentSpec],
        memo: Optional[Dict[ExperimentSpec, object]] = None,
    ) -> Dict[ExperimentSpec, object]:
        """Resolve every spec; returns results in first-seen spec order.

        ``memo`` is consulted first and updated in place (the runner passes
        its per-process cache so pool results feed subsequent ``run()``
        calls for free).  Telemetry covers exactly this batch; the
        process-wide :func:`aggregate_telemetry` accumulates across
        batches.

        Thread-safe: concurrent callers serialize on :attr:`lock`, so two
        threads driving one pool run their batches back to back (each
        batch still fans out across worker processes internally).
        ``self.telemetry`` describes the most recently finished batch —
        hold :attr:`lock` across the call and the read if another thread
        might start a batch in between.
        """
        with self._lock:
            return self._run_many_locked(keys, memo)

    def _run_many_locked(self, keys, memo):
        started = time.perf_counter()
        requested = list(keys)
        # Validate every kind up front: an unknown kind should fail the
        # batch loudly, not die inside a worker process.
        for spec in requested:
            get_kind(spec.kind)
        unique = list(dict.fromkeys(requested))
        telemetry = self.telemetry = PoolTelemetry(
            requested=len(requested), deduplicated=len(unique)
        )

        results: Dict[ExperimentSpec, object] = {}
        pending = []
        completed = 0
        total = len(unique)
        for key in unique:
            if memo is not None and key in memo:
                results[key] = memo[key]
                telemetry.memory_hits += 1
                completed += 1
                self._emit("memory", key, 0.0, completed, total)
                continue
            stored = self.store.get(key) if self.store is not None else None
            if stored is not None:
                results[key] = stored
                if memo is not None:
                    memo[key] = stored
                telemetry.store_hits += 1
                completed += 1
                self._emit("store", key, 0.0, completed, total)
                continue
            pending.append(key)

        if pending:
            self._resolve_pending(pending, results, memo, total)

        telemetry.wall_seconds = time.perf_counter() - started
        _aggregate.add(telemetry)
        return {key: results[key] for key in unique}

    # -- pending execution --------------------------------------------------

    def _resolve_pending(self, pending, results, memo, total):
        """Compute every pending spec, surviving worker loss and faults."""
        telemetry = self.telemetry
        plan = self.faults
        counter = _Counter(total - len(pending))
        attempts: Dict[ExperimentSpec, int] = {key: 0 for key in pending}

        def resolve(key, stats, seconds, task=None):
            results[key] = stats
            if memo is not None:
                memo[key] = stats
            if self.store is not None:
                self._persist(key, stats)
            telemetry.computed += 1
            telemetry.sim_seconds += seconds
            if task is not None and task.degraded:
                telemetry.degraded_runs += 1
            counter.value += 1
            self._emit(
                "computed",
                key,
                seconds,
                counter.value,
                total,
                attempt=attempts.get(key, 0) + 1,
                degraded=bool(task is not None and task.degraded),
            )

        def resolve_batch(task, stats_list, seconds, info=None):
            telemetry.batches += 1
            telemetry.batched_runs += len(task.specs)
            if info:
                telemetry.profiled_runs += int(info.get("profiled_runs", 0))
                telemetry.profile_passes += int(info.get("profile_passes", 0))
                telemetry.hier_vector_runs += int(info.get("hier_vector_runs", 0))
            # The batched call is one timed unit; attribute its wall-time
            # evenly so per-run sim_seconds still sum to engine time.
            share = seconds / len(task.specs)
            for spec, stats in zip(task.specs, stats_list):
                resolve(spec, stats, share, task)

        def deliver(task, payload):
            """Verify a task's payload and resolve it; raises on corruption."""
            if task.batched:
                stats_list, seconds, checksums, info = payload
                if checksums is not None:
                    for spec, stats, checksum in zip(
                        task.specs, stats_list, checksums
                    ):
                        faults_module.verify_result(spec, stats, checksum)
                resolve_batch(task, stats_list, seconds, info)
            else:
                stats, seconds, checksum = payload
                faults_module.verify_result(task.specs[0], stats, checksum)
                resolve(task.specs[0], stats, seconds, task)

        def execute_inline(task):
            if task.batched:
                return _execute_batch(
                    task.specs,
                    None,
                    [attempts[spec] for spec in task.specs],
                    plan,
                )
            spec = task.specs[0]
            return _execute(spec, attempts[spec], plan)

        def emit_failures(task, source):
            for spec in task.specs:
                attempts[spec] += 1
                self._emit(
                    source,
                    spec,
                    0.0,
                    counter.value,
                    total,
                    attempt=attempts[spec],
                    degraded=task.degraded,
                )

        def bisect(task):
            mid = (len(task.specs) + 1) // 2
            return [
                _Task(chunk, batched=len(chunk) > 1, degraded=True)
                for chunk in (task.specs[:mid], task.specs[mid:])
            ]

        def followups_for(task, error, kind, inline_tier):
            """The degradation ladder: what to schedule after a failure.

            ``kind`` is ``"error"`` (the task itself raised — attributable,
            so batches bisect immediately), ``"timeout"`` (attributable:
            the task stalled) or ``"broken"`` (a worker died; not
            attributable to this task, so it retries whole until its
            budget runs out).  Returns ``(tasks, delay_seconds)``; raises
            ``error`` when the ladder is exhausted.
            """
            if kind == "timeout":
                telemetry.timeouts += 1
            else:
                telemetry.retries += 1
            emit_failures(task, "timeout" if kind == "timeout" else "retry")
            attributable = kind in ("error", "timeout")
            if attributable and task.batched and len(task.specs) > 1:
                return bisect(task), 0.0
            worst = max(attempts[spec] for spec in task.specs)
            if worst <= self.retries:
                delay = faults_module.retry_delay(
                    task.specs[0],
                    worst,
                    self.backoff,
                    seed=plan.seed if plan is not None else 0,
                )
                return [task], delay
            if task.batched and len(task.specs) > 1:
                return bisect(task), 0.0
            if inline_tier and not task.inline:
                return [task.as_inline()], 0.0
            raise error

        batches, singles = self._plan_batches(pending)
        tasks = [_Task(specs, batched=True) for specs in batches]
        tasks += [_Task([key], batched=False) for key in singles]

        if self.jobs == 1 or len(tasks) == 1:
            self._run_serial(tasks, deliver, execute_inline, followups_for)
        else:
            self._run_parallel(
                tasks, pending, attempts, plan, deliver, execute_inline, followups_for
            )

    def _run_serial(self, tasks, deliver, execute_inline, followups_for):
        """Inline execution with the same retry/degradation ladder.

        Worker-only faults (hard exits, stalls) never fire in the parent,
        and per-task deadlines cannot be enforced without a worker to
        abandon, so serial recovery covers raises, corrupt results and
        torn store writes.  An exhausted ladder raises the final error.
        """
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            try:
                deliver(task, execute_inline(task))
            except Exception as error:
                replacements, delay = followups_for(
                    task, error, "error", inline_tier=False
                )
                if delay:
                    time.sleep(delay)
                for replacement in reversed(replacements):
                    queue.appendleft(replacement)

    def _run_parallel(
        self, tasks, pending, attempts, plan, deliver, execute_inline, followups_for
    ):
        """The fan-out scheduler: submit, watch deadlines, survive crashes."""
        telemetry = self.telemetry
        workers = min(self.jobs, len(tasks))
        rebuild_limit = max(8, 4 * (self.retries + 1))
        exported = self._export_traces(pending)
        ready = deque(tasks)
        delayed: List[tuple] = []  # heap of (due, seq, task)
        running: Dict[object, tuple] = {}  # future -> (task, deadline)
        seq = 0
        executor = None

        def schedule(replacements, delay):
            nonlocal seq
            if delay:
                due = time.monotonic() + delay
                for replacement in replacements:
                    seq += 1
                    heapq.heappush(delayed, (due, seq, replacement))
            else:
                ready.extend(replacements)

        def rebuild():
            nonlocal executor
            telemetry.pool_rebuilds += 1
            if telemetry.pool_rebuilds > rebuild_limit:
                raise RuntimeError(
                    f"worker pool rebuilt more than {rebuild_limit} times; "
                    "giving up on this batch"
                )
            if executor is not None:
                _abandon_executor(executor)
            executor = ProcessPoolExecutor(max_workers=workers)

        def submit(task):
            nonlocal executor
            if task.inline:
                # Last rung of the ladder: compute in the parent, now.
                try:
                    deliver(task, execute_inline(task))
                except Exception as error:
                    schedule(
                        *followups_for(task, error, "error", inline_tier=False)
                    )
                return
            head = task.specs[0]
            shared = exported.get((head.workload, head.scale, head.seed))
            handle = shared.handle if shared is not None else None
            for _ in range(2):
                try:
                    if task.batched:
                        future = executor.submit(
                            _execute_batch,
                            task.specs,
                            handle,
                            [attempts[spec] for spec in task.specs],
                            plan,
                        )
                    elif handle is not None:
                        future = executor.submit(
                            _execute_shared, head, handle, attempts[head], plan
                        )
                    else:
                        future = executor.submit(_execute, head, attempts[head], plan)
                    break
                except BrokenProcessPool:
                    rebuild()
            else:  # pragma: no cover - second rebuild also failed
                raise BrokenProcessPool("cannot submit to a rebuilt worker pool")
            deadline = (
                time.monotonic() + self.task_timeout if self.task_timeout else None
            )
            running[future] = (task, deadline)

        try:
            executor = ProcessPoolExecutor(max_workers=workers)
            while ready or delayed or running:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    ready.append(heapq.heappop(delayed)[2])
                while ready:
                    submit(ready.popleft())
                if not running:
                    if delayed:
                        pause = delayed[0][0] - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue

                wake_at = [due for due, _, _ in delayed[:1]]
                wake_at += [
                    deadline
                    for _, deadline in running.values()
                    if deadline is not None
                ]
                wait_timeout = (
                    max(0.0, min(wake_at) - time.monotonic()) if wake_at else None
                )
                done, _ = wait(
                    list(running), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                broken = False
                for future in done:
                    task, _ = running.pop(future)
                    error = future.exception()
                    if error is None:
                        try:
                            deliver(task, future.result())
                        except Exception as verify_error:
                            schedule(
                                *followups_for(
                                    task, verify_error, "error", inline_tier=True
                                )
                            )
                    elif isinstance(error, BrokenProcessPool):
                        broken = True
                        schedule(
                            *followups_for(task, error, "broken", inline_tier=True)
                        )
                    else:
                        schedule(
                            *followups_for(task, error, "error", inline_tier=True)
                        )

                if broken:
                    # The executor is dead; every in-flight task dies with
                    # it.  Requeue them all through the ladder and start a
                    # fresh pool.
                    for future, (task, _) in list(running.items()):
                        schedule(
                            *followups_for(
                                task,
                                BrokenProcessPool(
                                    "worker pool died with this task in flight"
                                ),
                                "broken",
                                inline_tier=True,
                            )
                        )
                    running.clear()
                    rebuild()
                    continue

                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline) in running.items()
                    if deadline is not None and deadline <= now
                ]
                if expired:
                    for future in expired:
                        task, _ = running.pop(future)
                        timeout_error = TimeoutError(
                            f"task exceeded its {self.task_timeout:.1f}s deadline"
                        )
                        schedule(
                            *followups_for(
                                task, timeout_error, "timeout", inline_tier=True
                            )
                        )
                    # A stalled worker cannot be cancelled individually;
                    # abandon the pool and requeue the innocent in-flight
                    # work without an attempt penalty.
                    for future, (task, _) in list(running.items()):
                        ready.append(task)
                    running.clear()
                    rebuild()
        finally:
            if executor is not None:
                _abandon_executor(executor)
            # Workers are gone (or being torn down), so the pages have no
            # consumers left and can be destroyed.
            for shared in exported.values():
                shared.close()
                shared.unlink()


class _Counter:
    """A tiny mutable int box shared between run_many and its scheduler."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value
