"""Parallel experiment execution with dedup, persistence and telemetry.

:class:`ExperimentPool` takes a batch of
:class:`~repro.exec.keys.ExperimentSpec` requests — of any mix of
registered kinds — and resolves each through a three-level lookup: an
in-memory memo (shared with :mod:`repro.core.runner`), the on-disk
:class:`~repro.exec.store.ResultStore`, and finally computation via the
kind's registered runner (see :mod:`repro.exec.experiments`) — inline for
``jobs=1``, or fanned out across a ``ProcessPoolExecutor`` for
``jobs>1``.  Duplicate specs are collapsed before any work is scheduled,
freshly computed results are persisted as they stream back, and every
resolution emits a :class:`RunEvent` through a pluggable callback (see
:func:`verbose_reporter` for the ``--verbose`` CLI hook).

Traces travel to workers as zero-copy shared-memory pages
(:mod:`repro.exec.shm`): the parent builds each distinct trace once and
workers map the page instead of re-running the workload generator.
Because pages are keyed by (workload, scale, seed), a mixed-kind batch
over the same workload ships each trace exactly once, whatever kinds
consume it.  When shared memory is unavailable, workers fall back to
regenerating from the deterministic generators — either way parallel
results are bit-identical to serial execution, which the test suite
enforces per kind.

Kinds that register a batch runner (the ``cache`` kind does, via
``repro.cache.fastsim.simulate_trace_batch``) get *batched dispatch*:
pending misses of such a kind that agree on ``(workload, scale, seed,
flush)`` travel to a worker as one task, so the batched kernel shares
the trace-side passes across the whole configuration grid.  Results stay
per-spec — each is individually content-addressed, persisted and
reported through the same :class:`RunEvent` path as an unbatched run.
Set ``$REPRO_SIM_BATCH=0`` (or construct the pool with ``batch=False``)
to force per-run dispatch when debugging.
"""

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.exec.experiments import get_kind
from repro.exec.keys import ExperimentSpec
from repro.exec.store import ResultStore

#: Environment variable setting the default worker count.
ENV_JOBS = "REPRO_JOBS"

#: Environment variable disabling batched dispatch ("0"/"false"/"off").
ENV_BATCH = "REPRO_SIM_BATCH"


def batching_default() -> bool:
    """Whether pools batch by default: on unless ``$REPRO_SIM_BATCH`` opts out."""
    return os.environ.get(ENV_BATCH, "1").strip().lower() not in ("0", "false", "off")


#: Process-wide override set by ``--jobs`` CLI flags (None = use $REPRO_JOBS).
_default_jobs_override: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Override the default worker count for this process (0 = all cores)."""
    global _default_jobs_override
    _default_jobs_override = jobs


def default_jobs() -> int:
    """Worker count: CLI override, else ``$REPRO_JOBS`` (0 = all cores), else 1."""
    if _default_jobs_override is not None:
        jobs = _default_jobs_override
    else:
        raw = os.environ.get(ENV_JOBS)
        if not raw:
            return 1
        jobs = int(raw)
    return os.cpu_count() or 1 if jobs == 0 else max(1, jobs)


@dataclass(frozen=True)
class RunEvent:
    """One resolved run, reported through the telemetry callback."""

    source: str  #: "memory", "store" or "computed"
    key: ExperimentSpec
    seconds: float  #: simulation wall-time (0 for memory/store hits)
    completed: int  #: runs resolved so far, this batch
    total: int  #: deduplicated batch size


@dataclass
class PoolTelemetry:
    """Aggregate counters for one :meth:`ExperimentPool.run_many` batch."""

    requested: int = 0  #: keys passed in, duplicates included
    deduplicated: int = 0  #: unique keys actually resolved
    memory_hits: int = 0
    store_hits: int = 0
    computed: int = 0
    sim_seconds: float = 0.0  #: summed per-run simulation wall-time
    wall_seconds: float = 0.0  #: end-to-end batch wall-time
    batches: int = 0  #: batched tasks dispatched (groups of >= 2 runs)
    batched_runs: int = 0  #: runs resolved through a batched task

    @property
    def runs_per_batch(self) -> float:
        """Mean grid size per batched task (0.0 when nothing batched)."""
        return self.batched_runs / self.batches if self.batches else 0.0

    def add(self, other: "PoolTelemetry") -> None:
        """Fold another batch's counters into this one."""
        self.requested += other.requested
        self.deduplicated += other.deduplicated
        self.memory_hits += other.memory_hits
        self.store_hits += other.store_hits
        self.computed += other.computed
        self.sim_seconds += other.sim_seconds
        self.wall_seconds += other.wall_seconds
        self.batches += other.batches
        self.batched_runs += other.batched_runs

    def line(self) -> str:
        """Stable machine-greppable summary (CI asserts on ``computed=``)."""
        return (
            f"requested={self.requested} deduplicated={self.deduplicated} "
            f"memory={self.memory_hits} store={self.store_hits} "
            f"computed={self.computed} sim_s={self.sim_seconds:.2f} "
            f"wall_s={self.wall_seconds:.2f} batches={self.batches} "
            f"batched_runs={self.batched_runs} "
            f"runs_per_batch={self.runs_per_batch:.1f}"
        )


#: Process-wide running total across every batch (any pool instance).
#: Lets multi-batch commands (``repro figures`` renders several figures,
#: each prefetching its own grid) report one summary line CI can grep.
_aggregate = PoolTelemetry()


def aggregate_telemetry() -> PoolTelemetry:
    """The process-wide telemetry total (all batches since last reset)."""
    return _aggregate


def reset_aggregate_telemetry() -> PoolTelemetry:
    """Zero the process-wide total; returns the new (empty) instance."""
    global _aggregate
    _aggregate = PoolTelemetry()
    return _aggregate


def _execute(spec: ExperimentSpec) -> Tuple[object, float]:
    """Run one experiment; used both inline and inside worker processes.

    Dispatches through the kind registry, so worker processes resolve the
    same runner the parent would (builtin kinds register lazily on first
    lookup in each process).
    """
    from repro.trace.corpus import load

    runner = get_kind(spec.kind).runner
    trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    stats = runner(spec, trace)
    return stats, time.perf_counter() - started


def _execute_shared(spec: ExperimentSpec, handle) -> Tuple[object, float]:
    """Run one experiment against a trace shipped in shared memory.

    Falls back to regenerating the trace if the page cannot be mapped
    (e.g. the platform lacks POSIX shared memory) — the results are
    bit-identical either way, only slower.
    """
    from repro.exec.shm import attach_trace
    from repro.trace.corpus import load

    runner = get_kind(spec.kind).runner
    try:
        trace = attach_trace(handle)
    except (OSError, ValueError):
        trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    stats = runner(spec, trace)
    return stats, time.perf_counter() - started


def _execute_batch(specs, handle) -> Tuple[list, float]:
    """Run a group of same-trace specs through their kind's batch runner.

    ``handle`` is an optional shared-memory trace handle (None means
    regenerate in-process).  Returns the per-spec stats list, in spec
    order, plus the wall-time of the whole batched call.
    """
    from repro.trace.corpus import load

    kind = get_kind(specs[0].kind)
    trace = None
    if handle is not None:
        from repro.exec.shm import attach_trace

        try:
            trace = attach_trace(handle)
        except (OSError, ValueError):
            trace = None
    if trace is None:
        spec = specs[0]
        trace = load(spec.workload, scale=spec.scale, seed=spec.seed)
    started = time.perf_counter()
    stats_list = list(kind.batch_runner(specs, trace))
    seconds = time.perf_counter() - started
    if len(stats_list) != len(specs):
        raise RuntimeError(
            f"batch runner for kind {kind.name!r} returned "
            f"{len(stats_list)} results for {len(specs)} specs"
        )
    return stats_list, seconds


def verbose_reporter(stream=None) -> Callable[[RunEvent], None]:
    """A callback printing one progress line per resolved run."""

    def report(event: RunEvent) -> None:
        out = stream if stream is not None else sys.stderr
        label = {"memory": "memo ", "store": "store", "computed": "sim  "}[
            event.source
        ]
        timing = f" ({event.seconds:.2f}s)" if event.source == "computed" else ""
        print(
            f"[{event.completed}/{event.total}] {label} {event.key.describe()}{timing}",
            file=out,
        )

    return report


class ExperimentPool:
    """Batch runner: memory -> disk -> compute, optionally in parallel."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        callback: Optional[Callable[[RunEvent], None]] = None,
        batch: Optional[bool] = None,
    ) -> None:
        self.store = store
        self.jobs = max(1, jobs)
        self.callback = callback
        self.batch = batching_default() if batch is None else bool(batch)
        self.telemetry = PoolTelemetry()

    def _emit(self, source, key, seconds, completed, total) -> None:
        if self.callback is not None:
            self.callback(RunEvent(source, key, seconds, completed, total))

    @staticmethod
    def _export_traces(pending):
        """Build each distinct pending trace once and publish it in shared
        memory; ``{}`` (falling back to in-worker regeneration) if the
        platform refuses shared memory."""
        from repro.exec.shm import export_trace
        from repro.trace.corpus import load

        exported = {}
        try:
            for spec in pending:
                identity = (spec.workload, spec.scale, spec.seed)
                if identity not in exported:
                    exported[identity] = export_trace(
                        load(spec.workload, scale=spec.scale, seed=spec.seed)
                    )
        except OSError:
            for shared in exported.values():
                shared.close()
                shared.unlink()
            return {}
        return exported

    def _plan_batches(self, pending):
        """Split pending misses into batched groups and per-run singles.

        Specs of a kind with a registered batch runner group by
        ``(kind, workload, scale, seed, flush)`` — everything a batch
        runner is allowed to assume is shared.  Only groups of two or
        more become batched tasks; a group of one gains nothing from the
        batch entry point, so it stays on the plain per-run path.
        """
        if not self.batch:
            return [], list(pending)
        groups: Dict[tuple, list] = {}
        singles = []
        for spec in pending:
            if get_kind(spec.kind).batch_runner is None:
                singles.append(spec)
                continue
            identity = (spec.kind, spec.workload, spec.scale, spec.seed, spec.flush)
            groups.setdefault(identity, []).append(spec)
        batches = []
        for specs in groups.values():
            if len(specs) > 1:
                batches.append(specs)
            else:
                singles.append(specs[0])
        return batches, singles

    def run_many(
        self,
        keys: Iterable[ExperimentSpec],
        memo: Optional[Dict[ExperimentSpec, object]] = None,
    ) -> Dict[ExperimentSpec, object]:
        """Resolve every spec; returns results in first-seen spec order.

        ``memo`` is consulted first and updated in place (the runner passes
        its per-process cache so pool results feed subsequent ``run()``
        calls for free).  Telemetry covers exactly this batch; the
        process-wide :func:`aggregate_telemetry` accumulates across
        batches.
        """
        started = time.perf_counter()
        requested = list(keys)
        # Validate every kind up front: an unknown kind should fail the
        # batch loudly, not die inside a worker process.
        for spec in requested:
            get_kind(spec.kind)
        unique = list(dict.fromkeys(requested))
        telemetry = self.telemetry = PoolTelemetry(
            requested=len(requested), deduplicated=len(unique)
        )

        results: Dict[ExperimentSpec, object] = {}
        pending = []
        completed = 0
        total = len(unique)
        for key in unique:
            if memo is not None and key in memo:
                results[key] = memo[key]
                telemetry.memory_hits += 1
                completed += 1
                self._emit("memory", key, 0.0, completed, total)
                continue
            stored = self.store.get(key) if self.store is not None else None
            if stored is not None:
                results[key] = stored
                if memo is not None:
                    memo[key] = stored
                telemetry.store_hits += 1
                completed += 1
                self._emit("store", key, 0.0, completed, total)
                continue
            pending.append(key)

        def resolve(key: ExperimentSpec, stats, seconds: float) -> None:
            nonlocal completed
            results[key] = stats
            if memo is not None:
                memo[key] = stats
            if self.store is not None:
                self.store.put(key, stats)
            telemetry.computed += 1
            telemetry.sim_seconds += seconds
            completed += 1
            self._emit("computed", key, seconds, completed, total)

        def resolve_batch(specs, stats_list, seconds: float) -> None:
            telemetry.batches += 1
            telemetry.batched_runs += len(specs)
            # The batched call is one timed unit; attribute its wall-time
            # evenly so per-run sim_seconds still sum to engine time.
            share = seconds / len(specs)
            for spec, stats in zip(specs, stats_list):
                resolve(spec, stats, share)

        if pending:
            batches, singles = self._plan_batches(pending)
            tasks = len(batches) + len(singles)
            if self.jobs == 1 or tasks == 1:
                # Serial fallback: never spawns worker processes (batched
                # groups still go through the batched kernel inline).
                for specs in batches:
                    stats_list, seconds = _execute_batch(specs, None)
                    resolve_batch(specs, stats_list, seconds)
                for key in singles:
                    stats, seconds = _execute(key)
                    resolve(key, stats, seconds)
            else:
                workers = min(self.jobs, tasks)
                exported = self._export_traces(pending)
                try:
                    with ProcessPoolExecutor(max_workers=workers) as executor:
                        futures = {}
                        for specs in batches:
                            head = specs[0]
                            shared = exported.get(
                                (head.workload, head.scale, head.seed)
                            )
                            handle = shared.handle if shared is not None else None
                            future = executor.submit(_execute_batch, specs, handle)
                            futures[future] = specs
                        for key in singles:
                            shared = exported.get((key.workload, key.scale, key.seed))
                            if shared is not None:
                                future = executor.submit(
                                    _execute_shared, key, shared.handle
                                )
                            else:
                                future = executor.submit(_execute, key)
                            futures[future] = key
                        for future in as_completed(futures):
                            task = futures[future]
                            if isinstance(task, list):
                                stats_list, seconds = future.result()
                                resolve_batch(task, stats_list, seconds)
                            else:
                                stats, seconds = future.result()
                                resolve(task, stats, seconds)
                finally:
                    # Workers have exited (executor shutdown above), so the
                    # pages have no consumers left and can be destroyed.
                    for shared in exported.values():
                        shared.close()
                        shared.unlink()

        telemetry.wall_seconds = time.perf_counter() - started
        _aggregate.add(telemetry)
        return {key: results[key] for key in unique}
