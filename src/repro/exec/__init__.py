"""Experiment orchestration: parallel execution and persistent results.

The figure and benchmark sweeps all reduce to batches of experiment
requests — an experiment *kind* (which simulator family), a workload with
scale and seed, and a kind-specific configuration.  This package turns
those batches into a pipeline:

- :mod:`repro.exec.experiments` — the kind registry: each simulator
  family registers a runner, a stats type and an engine version under a
  stable kind tag (:func:`register_runner`);
- :mod:`repro.exec.keys` — :class:`ExperimentSpec`, the content-addressed
  identity of one run (the kind's engine version is part of the hash, so
  engine changes invalidate that kind's results only); :func:`RunKey`
  builds the cache-kind spec;
- :mod:`repro.exec.store` — :class:`ResultStore`, an atomic,
  corruption-tolerant on-disk map from specs to their kind's stats;
- :mod:`repro.exec.pool` — :class:`ExperimentPool`, a deduplicating
  memory -> disk -> compute batch runner with optional process-pool
  fan-out, per-run telemetry and fault tolerance (retries with backoff,
  per-task deadlines, pool rebuilds, batch bisection); mixed-kind
  batches share trace shipment;
- :mod:`repro.exec.faults` — deterministic fault injection
  (:class:`FaultPlan`) driving the chaos test suite; inert in
  production.

:mod:`repro.core.runner` builds its ``run``/``prefetch`` API on top, so
callers rarely touch this package directly.
"""

from repro.exec.experiments import (
    ExperimentKind,
    UnknownExperimentKind,
    engine_version_for,
    get_kind,
    register_runner,
    registered_kinds,
    unregister_runner,
)
from repro.exec.faults import (
    ENV_FAULT_PLAN,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ResultIntegrityError,
    active_plan,
    set_active_plan,
)
from repro.exec.keys import ExperimentSpec, RunKey
from repro.exec.pool import (
    ENV_JOBS,
    ENV_RETRIES,
    ENV_TASK_TIMEOUT,
    ExperimentPool,
    PoolTelemetry,
    RunEvent,
    aggregate_telemetry,
    default_jobs,
    default_retries,
    default_task_timeout,
    reset_aggregate_telemetry,
    set_default_fault_policy,
    set_default_jobs,
    verbose_reporter,
)
from repro.exec.store import (
    ENV_RESULT_DIR,
    ResultStore,
    StoreTelemetry,
    default_store_root,
    open_default_store,
)

__all__ = [
    "ExperimentKind",
    "ExperimentSpec",
    "RunKey",
    "UnknownExperimentKind",
    "engine_version_for",
    "get_kind",
    "register_runner",
    "registered_kinds",
    "unregister_runner",
    "ExperimentPool",
    "PoolTelemetry",
    "RunEvent",
    "aggregate_telemetry",
    "reset_aggregate_telemetry",
    "default_jobs",
    "set_default_jobs",
    "default_retries",
    "default_task_timeout",
    "set_default_fault_policy",
    "verbose_reporter",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ResultIntegrityError",
    "active_plan",
    "set_active_plan",
    "ResultStore",
    "StoreTelemetry",
    "default_store_root",
    "open_default_store",
    "ENV_JOBS",
    "ENV_RETRIES",
    "ENV_TASK_TIMEOUT",
    "ENV_FAULT_PLAN",
    "ENV_RESULT_DIR",
]
