"""Experiment orchestration: parallel execution and persistent results.

The figure and benchmark sweeps all reduce to batches of experiment
requests — an experiment *kind* (which simulator family), a workload with
scale and seed, and a kind-specific configuration.  This package turns
those batches into a pipeline:

- :mod:`repro.exec.experiments` — the kind registry: each simulator
  family registers a runner, a stats type and an engine version under a
  stable kind tag (:func:`register_runner`);
- :mod:`repro.exec.keys` — :class:`ExperimentSpec`, the content-addressed
  identity of one run (the kind's engine version is part of the hash, so
  engine changes invalidate that kind's results only); :func:`RunKey`
  builds the cache-kind spec;
- :mod:`repro.exec.store` — :class:`ResultStore`, an atomic,
  corruption-tolerant on-disk map from specs to their kind's stats;
- :mod:`repro.exec.pool` — :class:`ExperimentPool`, a deduplicating
  memory -> disk -> compute batch runner with optional process-pool
  fan-out and per-run telemetry; mixed-kind batches share trace
  shipment.

:mod:`repro.core.runner` builds its ``run``/``prefetch`` API on top, so
callers rarely touch this package directly.
"""

from repro.exec.experiments import (
    ExperimentKind,
    UnknownExperimentKind,
    engine_version_for,
    get_kind,
    register_runner,
    registered_kinds,
    unregister_runner,
)
from repro.exec.keys import ExperimentSpec, RunKey
from repro.exec.pool import (
    ENV_JOBS,
    ExperimentPool,
    PoolTelemetry,
    RunEvent,
    aggregate_telemetry,
    default_jobs,
    reset_aggregate_telemetry,
    set_default_jobs,
    verbose_reporter,
)
from repro.exec.store import (
    ENV_RESULT_DIR,
    ResultStore,
    StoreTelemetry,
    default_store_root,
    open_default_store,
)

__all__ = [
    "ExperimentKind",
    "ExperimentSpec",
    "RunKey",
    "UnknownExperimentKind",
    "engine_version_for",
    "get_kind",
    "register_runner",
    "registered_kinds",
    "unregister_runner",
    "ExperimentPool",
    "PoolTelemetry",
    "RunEvent",
    "aggregate_telemetry",
    "reset_aggregate_telemetry",
    "default_jobs",
    "set_default_jobs",
    "verbose_reporter",
    "ResultStore",
    "StoreTelemetry",
    "default_store_root",
    "open_default_store",
    "ENV_JOBS",
    "ENV_RESULT_DIR",
]
