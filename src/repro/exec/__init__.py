"""Experiment orchestration: parallel execution and persistent results.

The figure and benchmark sweeps all reduce to batches of
``(workload, scale, seed, config)`` simulation requests.  This package
turns those batches into a pipeline:

- :mod:`repro.exec.keys` — :class:`RunKey`, the content-addressed identity
  of one run (simulator version included, so engine changes invalidate);
- :mod:`repro.exec.store` — :class:`ResultStore`, an atomic,
  corruption-tolerant on-disk map from keys to
  :class:`~repro.cache.stats.CacheStats`;
- :mod:`repro.exec.pool` — :class:`ExperimentPool`, a deduplicating
  memory -> disk -> compute batch runner with optional process-pool
  fan-out and per-run telemetry.

:mod:`repro.core.runner` builds its ``run``/``prefetch`` API on top, so
callers rarely touch this package directly.
"""

from repro.exec.keys import RunKey
from repro.exec.pool import (
    ENV_JOBS,
    ExperimentPool,
    PoolTelemetry,
    RunEvent,
    default_jobs,
    set_default_jobs,
    verbose_reporter,
)
from repro.exec.store import (
    ENV_RESULT_DIR,
    ResultStore,
    StoreTelemetry,
    default_store_root,
    open_default_store,
)

__all__ = [
    "RunKey",
    "ExperimentPool",
    "PoolTelemetry",
    "RunEvent",
    "default_jobs",
    "set_default_jobs",
    "verbose_reporter",
    "ResultStore",
    "StoreTelemetry",
    "default_store_root",
    "open_default_store",
    "ENV_JOBS",
    "ENV_RESULT_DIR",
]
