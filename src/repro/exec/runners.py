"""Builtin experiment runners — one per simulator family.

Imported lazily by :mod:`repro.exec.experiments` on first kind lookup;
the module-level :func:`~repro.exec.experiments.register_runner` calls at
the bottom are what make the builtin kinds exist.  Worker processes hit
the same lazy import on their first dispatched spec, so kinds resolve
identically under :class:`~concurrent.futures.ProcessPoolExecutor`.

Engine versioning: families built on the L1 simulator (``cache``,
``victim_buffer``, ``system``) fold ``SIMULATOR_VERSION`` into their
engine tag, so an L1 engine bump invalidates their stored results too;
the pure timing models (``write_buffer``, ``write_cache``) version
independently.
"""

from repro.buffers.victim_buffer import (
    VICTIM_BUFFER_ENGINE_VERSION,
    VictimBufferConfig,
    VictimBufferStats,
    dirty_victim_times,
)
from repro.buffers.write_buffer import (
    WRITE_BUFFER_ENGINE_VERSION,
    WriteBufferConfig,
    WriteBufferStats,
)
from repro.buffers.write_cache import (
    WRITE_CACHE_ENGINE_VERSION,
    WriteCacheConfig,
    WriteCacheStats,
)
from repro.cache.config import CacheConfig
from repro.cache.fastsim import (
    SIMULATOR_VERSION,
    simulate_trace,
    simulate_trace_batch,
    simulate_trace_batch_info,
)
from repro.cache.stats import CacheStats
from repro.exec.experiments import register_runner
from repro.hierarchy.hiersim import simulate_hierarchy_batch_info
from repro.hierarchy.system import (
    SYSTEM_ENGINE_VERSION,
    HierarchyConfig,
    SystemStats,
    simulate_system,
)


def run_cache(spec, trace):
    """L1 cache counters via the fast simulator."""
    return simulate_trace(trace, spec.config, flush=spec.flush)


def run_cache_batch(specs, trace):
    """A grid of L1 cache runs sharing one trace's vectorised passes.

    The pool only groups specs that agree on ``(workload, scale, seed,
    flush)``, so one ``flush`` value covers the batch — and that
    invariant survives batch bisection, since any sub-list of a uniform
    group is itself uniform.  ``simulate_trace_batch`` carries no state
    between calls beyond caches keyed by its inputs, so re-dispatching a
    bisected half stays bit-identical to the original grid.
    """
    flush = specs[0].flush
    assert all(spec.flush == flush for spec in specs)
    return simulate_trace_batch(trace, [spec.config for spec in specs], flush=flush)


def run_cache_batch_info(specs, trace):
    """:func:`run_cache_batch` plus dispatch counters for telemetry.

    Returns ``(stats_list, counters)`` where ``counters`` reports how
    many runs were served from reuse-distance ladder profiles and how
    many profiling passes were paid (see
    :func:`repro.cache.fastsim.simulate_trace_batch_info`).  The stats
    list is bit-identical to :func:`run_cache_batch` — the profiler is a
    routing decision, not a semantic one — so batch bisection may mix
    the two entry points freely.
    """
    flush = specs[0].flush
    assert all(spec.flush == flush for spec in specs)
    results, info = simulate_trace_batch_info(
        trace, [spec.config for spec in specs], flush=flush
    )
    return results, {
        "profiled_runs": info.profiled_runs,
        "profile_passes": info.profile_passes,
    }


def run_write_buffer(spec, trace):
    """Coalescing write buffer timing model (no flush concept: the buffer
    always drains on its own; ``spec.flush`` is identity-only here)."""
    return spec.config.build().simulate(trace)


def run_write_cache(spec, trace):
    """Stand-alone write cache over the store stream of the trace."""
    return spec.config.build().run_writes(trace, flush=spec.flush)


def run_victim_buffer(spec, trace):
    """Dirty-victim buffer timing behind the configured write-back cache."""
    times, instructions = dirty_victim_times(trace, spec.config.cache)
    return spec.config.build().simulate(times, instructions)


def run_system(spec, trace):
    """Composed hierarchy: L1 + optional structures + metered memory."""
    return simulate_system(trace, spec.config, flush=spec.flush)


def run_system_batch(specs, trace):
    """A grid of hierarchy runs sharing one trace's vectorised passes.

    Same grouping invariant as :func:`run_cache_batch`: the pool only
    groups specs agreeing on ``(workload, scale, seed, flush)``, and any
    sub-list of a uniform group is itself uniform, so batch bisection
    re-dispatches stay bit-identical.
    """
    flush = specs[0].flush
    assert all(spec.flush == flush for spec in specs)
    results, _ = simulate_hierarchy_batch_info(
        trace, [spec.config for spec in specs], flush=flush
    )
    return results


def run_system_batch_info(specs, trace):
    """:func:`run_system_batch` plus dispatch counters for telemetry.

    ``hier_vector_runs`` counts hierarchy runs whose first level went
    through the vector kernel (fully-composed declines don't count); the
    pool folds it into :class:`~repro.exec.pool.PoolTelemetry`.
    """
    flush = specs[0].flush
    assert all(spec.flush == flush for spec in specs)
    results, info = simulate_hierarchy_batch_info(
        trace, [spec.config for spec in specs], flush=flush
    )
    return results, {"hier_vector_runs": info["hier_vector_runs"]}


register_runner(
    "cache",
    run_cache,
    CacheStats,
    SIMULATOR_VERSION,
    batch_runner=run_cache_batch,
    info_batch_runner=run_cache_batch_info,
    config_type=CacheConfig,
)
register_runner(
    "write_buffer",
    run_write_buffer,
    WriteBufferStats,
    WRITE_BUFFER_ENGINE_VERSION,
    config_type=WriteBufferConfig,
)
register_runner(
    "write_cache",
    run_write_cache,
    WriteCacheStats,
    WRITE_CACHE_ENGINE_VERSION,
    config_type=WriteCacheConfig,
)
register_runner(
    "victim_buffer",
    run_victim_buffer,
    VictimBufferStats,
    f"{VICTIM_BUFFER_ENGINE_VERSION}+sim{SIMULATOR_VERSION}",
    config_type=VictimBufferConfig,
)
register_runner(
    "system",
    run_system,
    SystemStats,
    f"{SYSTEM_ENGINE_VERSION}+sim{SIMULATOR_VERSION}",
    # v2: per-level stats lists + per-boundary meters (the hierarchy
    # refactor); v1 records quarantine on read rather than misdecode.
    schema_version=2,
    batch_runner=run_system_batch,
    info_batch_runner=run_system_batch_info,
    config_type=HierarchyConfig,
)
