"""Content-addressed identity of one simulation run.

A :class:`RunKey` names everything that determines a run's statistics:
the workload, its scale and seed, the cache configuration and the
simulator version.  Its :meth:`~RunKey.digest` is the address under which
the result store persists the :class:`~repro.cache.stats.CacheStats`, so
it must be stable across processes, Python versions and hash
randomisation — it is built from an explicit canonical string, never from
``hash()``.
"""

import hashlib
from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cache.fastsim import SIMULATOR_VERSION


@dataclass(frozen=True)
class RunKey:
    """One (workload, scale, seed, config) simulation request."""

    workload: str
    scale: float
    seed: int
    config: CacheConfig

    def canonical(self) -> str:
        """The exact string that is hashed into the store address.

        ``scale`` uses ``repr`` so distinct floats never collide, and the
        simulator version rides along so an engine bump invalidates every
        previously stored result.
        """
        return (
            f"workload={self.workload}:scale={self.scale!r}:seed={self.seed}:"
            f"{self.config.cache_key()}:simver={SIMULATOR_VERSION}"
        )

    def digest(self) -> str:
        """Hex content address (sha256 of :meth:`canonical`)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        return f"{self.workload}@{self.scale:g} on {self.config.name}"
