"""Content-addressed identity of one experiment.

An :class:`ExperimentSpec` names everything that determines a run's
statistics: the experiment kind, the workload with its scale and seed,
the kind-specific configuration, the flush policy, and — via the
experiment registry — the kind's engine version.  Its
:meth:`~ExperimentSpec.digest` is the address under which the result
store persists the stats, so it must be stable across processes, Python
versions and hash randomisation — it is built from an explicit canonical
string, never from ``hash()``.

Config objects plug in via duck typing: anything frozen/hashable with a
``cache_key()`` canonical string and a ``name`` property participates
(:class:`~repro.cache.config.CacheConfig`,
:class:`~repro.buffers.write_buffer.WriteBufferConfig`, ...).

:func:`RunKey` survives as a factory for the original cache-kind spec, so
``RunKey("ccom", 1.0, 1991, CacheConfig())`` keeps meaning what it always
did.
"""

import hashlib
from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.exec.experiments import engine_version_for, get_kind


@dataclass(frozen=True)
class ExperimentSpec:
    """One (kind, workload, scale, seed, config, flush) experiment request."""

    kind: str
    workload: str
    scale: float
    seed: int
    config: object
    flush: bool = True

    def canonical(self) -> str:
        """The exact string that is hashed into the store address.

        ``scale`` uses ``repr`` so distinct floats never collide, and the
        kind's engine version rides along so an engine bump invalidates
        every previously stored result of that kind — and only that kind.
        """
        return (
            f"kind={self.kind}:workload={self.workload}:scale={self.scale!r}:"
            f"seed={self.seed}:flush={int(self.flush)}:"
            f"{self.config.cache_key()}:"
            f"engine={engine_version_for(self.kind)}"
        )

    def digest(self) -> str:
        """Hex content address (sha256 of :meth:`canonical`)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        label = f"{self.workload}@{self.scale:g} on {self.config.name}"
        if self.kind != "cache":
            label = f"[{self.kind}] {label}"
        if not self.flush:
            label += " (no flush)"
        return label

    # -- serde ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe payload naming the full identity of this experiment.

        Requires the kind to have registered a ``config_type`` (every
        builtin kind does); the config nests as its own dict.  JSON floats
        round-trip exactly (shortest-repr), so ``scale`` survives the wire
        bit-identically and the rebuilt spec hashes to the same digest.
        """
        kind = get_kind(self.kind)
        if kind.config_type is None:
            raise TypeError(
                f"experiment kind {self.kind!r} registered no config_type; "
                "its specs cannot be serialized"
            )
        return {
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "flush": self.flush,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise.

        The kind tag selects the registered ``config_type`` whose
        ``from_dict`` rebuilds (and validates) the nested config.
        """
        known = {"kind", "workload", "scale", "seed", "flush", "config"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        kind = get_kind(payload["kind"])
        if kind.config_type is None:
            raise TypeError(
                f"experiment kind {kind.name!r} registered no config_type; "
                "its specs cannot be deserialized"
            )
        return cls(
            kind=kind.name,
            workload=str(payload["workload"]),
            scale=float(payload["scale"]),
            seed=int(payload["seed"]),
            config=kind.config_type.from_dict(payload["config"]),
            flush=bool(payload.get("flush", True)),
        )


def RunKey(
    workload: str,
    scale: float,
    seed: int,
    config: CacheConfig,
    flush: bool = True,
) -> ExperimentSpec:
    """Build a cache-kind :class:`ExperimentSpec` (the original key shape)."""
    return ExperimentSpec(
        kind="cache",
        workload=workload,
        scale=scale,
        seed=seed,
        config=config,
        flush=flush,
    )
