"""On-disk, content-addressed result store.

Layout: one JSON file per result under ``<root>/v<SCHEMA>/<aa>/<digest>.json``
where ``aa`` is the first two hex digits of the
:class:`~repro.exec.keys.ExperimentSpec` digest (a 256-way shard keeps
directories small for large sweeps).  Each record carries the store schema
version, the experiment kind with its per-kind stats schema version, the
canonical key string and the stats counter dict for that kind.

Guarantees:

- **atomic writes** — records are written to a temp file in the shard
  directory and ``os.replace``d into place, so readers never observe a
  partial record, even across concurrent writers;
- **corruption tolerance** — a truncated, garbled, schema-mismatched or
  wrong-kind record reads as a miss (and is counted in telemetry), never
  a crash; the caller simply recomputes and overwrites it — and one
  kind's bad records never affect another kind's;
- **invalidation** — each kind's engine version is part of the content
  hash (see :meth:`ExperimentSpec.canonical`), so bumping one family's
  engine orphans that family's records only; a kind's ``schema_version``
  is checked at read time, so a counter-layout change cannot resurrect as
  garbage.  ``gc()`` deletes orphans and corrupt files.

The default location is ``$REPRO_RESULT_DIR`` if set, else
``~/.cache/repro/results`` (honouring ``$XDG_CACHE_HOME``).  Setting
``REPRO_RESULT_DIR`` to ``off``, ``none`` or ``0`` disables persistence
entirely.
"""

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.exec.experiments import UnknownExperimentKind, get_kind
from repro.exec.keys import ExperimentSpec

#: Bump when the record layout changes; old schema dirs become garbage.
#: v2: records gained "kind" and "kind_schema" (kind-dispatched registry).
STORE_SCHEMA = 2

#: Environment variable overriding the store location ("off" disables).
ENV_RESULT_DIR = "REPRO_RESULT_DIR"

_DISABLED_VALUES = ("", "off", "none", "0", "disabled")


@dataclass
class StoreTelemetry:
    """Counters describing how the store has been used this process."""

    hits: int = 0  #: get() calls served from disk
    misses: int = 0  #: get() calls with no record on disk
    corrupt: int = 0  #: records skipped because they failed to parse
    writes: int = 0  #: records persisted

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }


class ResultStore:
    """Persistent map from :class:`ExperimentSpec` to its kind's stats."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.telemetry = StoreTelemetry()

    # -- addressing ---------------------------------------------------------

    @property
    def schema_dir(self) -> pathlib.Path:
        return self.root / f"v{STORE_SCHEMA}"

    def path_for(self, key: ExperimentSpec) -> pathlib.Path:
        digest = key.digest()
        return self.schema_dir / digest[:2] / f"{digest}.json"

    # -- read/write ---------------------------------------------------------

    def get(self, key: ExperimentSpec):
        """Load a stored result, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.telemetry.misses += 1
            return None
        try:
            record = json.loads(raw)
            if record["schema"] != STORE_SCHEMA:
                raise ValueError(f"schema {record['schema']} != {STORE_SCHEMA}")
            if record["kind"] != key.kind:
                raise ValueError(
                    f"stored kind {record['kind']!r} != requested {key.kind!r}"
                )
            kind = get_kind(key.kind)
            if record["kind_schema"] != kind.schema_version:
                raise ValueError(
                    f"{key.kind} stats schema {record['kind_schema']} "
                    f"!= {kind.schema_version}"
                )
            if record["key"] != key.canonical():
                raise ValueError("stored key does not match address")
            stats = kind.stats_type.from_dict(record["stats"])
        except (ValueError, KeyError, TypeError):
            # A bad record is never fatal: treat as a miss and recompute.
            self.telemetry.corrupt += 1
            return None
        self.telemetry.hits += 1
        return stats

    def put(self, key: ExperimentSpec, stats) -> None:
        """Persist a result atomically (write temp file, then rename)."""
        kind = get_kind(key.kind)
        if not isinstance(stats, kind.stats_type):
            raise TypeError(
                f"{key.kind} experiments persist {kind.stats_type.__name__}, "
                f"got {type(stats).__name__}"
            )
        record = {
            "schema": STORE_SCHEMA,
            "kind": kind.name,
            "kind_schema": kind.schema_version,
            "key": key.canonical(),
            "stats": stats.to_dict(),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(record, tmp, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.telemetry.writes += 1

    def contains(self, key: ExperimentSpec) -> bool:
        """Cheap existence probe (no parse, no telemetry)."""
        return self.path_for(key).exists()

    # -- maintenance --------------------------------------------------------

    def _record_paths(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("v*/??/*.json")):
            if not path.name.startswith(".tmp-"):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    def stats(self) -> Dict[str, object]:
        """Summary of what is on disk (for ``repro store stats``).

        ``by_kind`` counts current-schema records per experiment kind;
        unreadable records land in the ``"<corrupt>"`` bucket.
        """
        records = 0
        size_bytes = 0
        stale = 0
        by_kind: Dict[str, int] = {}
        for path in self._record_paths():
            records += 1
            try:
                size_bytes += path.stat().st_size
            except OSError:
                continue
            if f"v{STORE_SCHEMA}" not in path.parts:
                stale += 1
                continue
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                kind_name = record["kind"]
                if not isinstance(kind_name, str):
                    raise TypeError("kind is not a string")
            except (OSError, ValueError, KeyError, TypeError):
                kind_name = "<corrupt>"
            by_kind[kind_name] = by_kind.get(kind_name, 0) + 1
        return {
            "root": str(self.root),
            "records": records,
            "bytes": size_bytes,
            "stale_schema_records": stale,
            "by_kind": dict(sorted(by_kind.items())),
            **self.telemetry.snapshot(),
        }

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in list(self._record_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self) -> Tuple[int, int]:
        """Drop corrupt, stale-schema and unknown-kind records.

        Returns ``(kept, removed)``.  A record is kept only if it lives
        under the current schema directory, names a registered kind whose
        stats schema matches, and parses cleanly all the way through that
        kind's ``from_dict``.  One kind's corrupt records never force
        another kind's records out.
        """
        kept = removed = 0
        for path in list(self._record_paths()):
            keep = f"v{STORE_SCHEMA}" in path.parts
            if keep:
                try:
                    record = json.loads(path.read_text(encoding="utf-8"))
                    kind = get_kind(record["kind"])
                    keep = (
                        record["schema"] == STORE_SCHEMA
                        and record["kind_schema"] == kind.schema_version
                    )
                    if keep:
                        kind.stats_type.from_dict(record["stats"])
                except (
                    OSError,
                    ValueError,
                    KeyError,
                    TypeError,
                    UnknownExperimentKind,
                ):
                    keep = False
            if keep:
                kept += 1
            else:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return kept, removed


def default_store_root() -> Optional[pathlib.Path]:
    """Resolve the store location from the environment.

    ``None`` means persistence is disabled.
    """
    override = os.environ.get(ENV_RESULT_DIR)
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return pathlib.Path(override).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(cache_home) if cache_home else pathlib.Path.home() / ".cache"
    return base / "repro" / "results"


def open_default_store() -> Optional[ResultStore]:
    """A :class:`ResultStore` at the default location, or ``None`` if off."""
    root = default_store_root()
    return None if root is None else ResultStore(root)
