"""On-disk, content-addressed result store.

Layout: one JSON file per result under ``<root>/v<SCHEMA>/<aa>/<digest>.json``
where ``aa`` is the first two hex digits of the
:class:`~repro.exec.keys.ExperimentSpec` digest (a 256-way shard keeps
directories small for large sweeps).  Each record carries the store schema
version, the experiment kind with its per-kind stats schema version, the
canonical key string and the stats counter dict for that kind.

Guarantees:

- **atomic writes** — records are written to a temp file in the shard
  directory and ``os.replace``d into place, so readers never observe a
  partial record, even across concurrent writers;
- **corruption tolerance** — a truncated, garbled, schema-mismatched or
  wrong-kind record reads as a miss (and is counted in telemetry), never
  a crash; the caller simply recomputes and overwrites it — and one
  kind's bad records never affect another kind's;
- **quarantine** — a record that fails to read is not silently
  re-missed: it is *moved* into a ``quarantine/`` sidecar directory with
  a machine-readable reason code (``parse-error``,
  ``store-schema-mismatch``, ``kind-mismatch``, ``kind-schema-mismatch``,
  ``key-mismatch``, ``stats-decode-error``, ``unknown-kind``,
  ``stale-store-schema``), so corruption is diagnosable after the fact.
  ``store stats`` reports the quarantine population, ``store gc`` routes
  the bad records it drops through the same sidecar, and
  ``store quarantine [--purge]`` lists or empties it;
- **invalidation** — each kind's engine version is part of the content
  hash (see :meth:`ExperimentSpec.canonical`), so bumping one family's
  engine orphans that family's records only; a kind's ``schema_version``
  is checked at read time, so a counter-layout change cannot resurrect as
  garbage.  ``gc()`` deletes orphans and corrupt files.

The default location is ``$REPRO_RESULT_DIR`` if set, else
``~/.cache/repro/results`` (honouring ``$XDG_CACHE_HOME``).  Setting
``REPRO_RESULT_DIR`` to ``off``, ``none`` or ``0`` disables persistence
entirely.
"""

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exec import faults as faults_module
from repro.exec.experiments import UnknownExperimentKind, get_kind
from repro.exec.keys import ExperimentSpec

#: Bump when the record layout changes; old schema dirs become garbage.
#: v2: records gained "kind" and "kind_schema" (kind-dispatched registry).
STORE_SCHEMA = 2

#: Environment variable overriding the store location ("off" disables).
ENV_RESULT_DIR = "REPRO_RESULT_DIR"

#: Sidecar directory (under the store root) holding quarantined records.
QUARANTINE_DIRNAME = "quarantine"

_DISABLED_VALUES = ("", "off", "none", "0", "disabled")


@dataclass
class StoreTelemetry:
    """Counters describing how the store has been used this process."""

    hits: int = 0  #: get() calls served from disk
    misses: int = 0  #: get() calls with no record on disk
    corrupt: int = 0  #: records skipped because they failed to parse
    writes: int = 0  #: records persisted
    quarantined: int = 0  #: bad records moved into the quarantine sidecar

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }


class ResultStore:
    """Persistent map from :class:`ExperimentSpec` to its kind's stats."""

    def __init__(self, root, faults=None) -> None:
        self.root = pathlib.Path(root)
        self.telemetry = StoreTelemetry()
        # Fault plan driving torn-write injection (chaos tests only; None
        # in production, where the write path never consults it again).
        self.faults = faults_module.active_plan() if faults is None else faults

    # -- addressing ---------------------------------------------------------

    @property
    def schema_dir(self) -> pathlib.Path:
        return self.root / f"v{STORE_SCHEMA}"

    def path_for(self, key: ExperimentSpec) -> pathlib.Path:
        digest = key.digest()
        return self.schema_dir / digest[:2] / f"{digest}.json"

    # -- read/write ---------------------------------------------------------

    def _decode(self, key: ExperimentSpec, raw: str):
        """Parse one record for ``key``: ``(stats, None)`` or ``(None, reason)``."""
        try:
            record = json.loads(raw)
        except ValueError:
            return None, "parse-error"
        if not isinstance(record, dict):
            return None, "parse-error"
        if record.get("schema") != STORE_SCHEMA:
            return None, "store-schema-mismatch"
        if record.get("kind") != key.kind:
            return None, "kind-mismatch"
        kind = get_kind(key.kind)
        if record.get("kind_schema") != kind.schema_version:
            return None, "kind-schema-mismatch"
        if record.get("key") != key.canonical():
            return None, "key-mismatch"
        try:
            stats = kind.stats_type.from_dict(record["stats"])
        except (ValueError, KeyError, TypeError):
            return None, "stats-decode-error"
        return stats, None

    def get(self, key: ExperimentSpec):
        """Load a stored result, or ``None`` on miss/corruption.

        A record that fails to read is quarantined (moved to the
        ``quarantine/`` sidecar with its reason code) rather than left in
        place to re-miss on every warm run; the caller recomputes and the
        fresh write heals the store.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.telemetry.misses += 1
            return None
        stats, reason = self._decode(key, raw)
        if reason is not None:
            # A bad record is never fatal: quarantine it and recompute.
            self.telemetry.corrupt += 1
            self._quarantine(path, reason, raw=raw)
            return None
        self.telemetry.hits += 1
        return stats

    def put(self, key: ExperimentSpec, stats) -> None:
        """Persist a result atomically (write temp file, then rename)."""
        kind = get_kind(key.kind)
        if not isinstance(stats, kind.stats_type):
            raise TypeError(
                f"{key.kind} experiments persist {kind.stats_type.__name__}, "
                f"got {type(stats).__name__}"
            )
        record = {
            "schema": STORE_SCHEMA,
            "kind": kind.name,
            "kind_schema": kind.schema_version,
            "key": key.canonical(),
            "stats": stats.to_dict(),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        torn = faults_module.store_write_rule(self.faults, key)
        if torn is not None:
            # Injected torn write: bypass the temp-file/rename protection
            # and leave a truncated record at the final path, as a crash
            # mid-write would without atomicity.  The next read finds the
            # damage, quarantines it and recomputes.
            payload = json.dumps(record, separators=(",", ":"))
            path.write_text(payload[: max(1, len(payload) // 2)], encoding="utf-8")
            raise faults_module.InjectedFault(
                f"injected torn store write for {key.describe()}"
            )
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(record, tmp, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.telemetry.writes += 1

    def contains(self, key: ExperimentSpec) -> bool:
        """Cheap existence probe (no parse, no telemetry)."""
        return self.path_for(key).exists()

    # -- quarantine ---------------------------------------------------------

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / QUARANTINE_DIRNAME

    def _quarantine(self, path: pathlib.Path, reason: str, raw=None) -> None:
        """Move one bad record into the quarantine sidecar.

        The quarantine entry is a JSON envelope carrying the reason code,
        the record's original path and its raw bytes, so corruption can be
        diagnosed after the store has healed itself.  Quarantine failures
        (read-only sidecar, full disk) degrade to plain deletion — a bad
        record must never survive in the record tree either way.
        """
        if raw is None:
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError:
                raw = None
        entry = {"reason": reason, "source": str(path), "raw": raw}
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(self.quarantine_dir), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(entry, tmp, separators=(",", ":"))
            os.replace(tmp_name, self.quarantine_dir / path.name)
        except OSError:
            pass
        try:
            path.unlink()
        except OSError:
            pass
        self.telemetry.quarantined += 1

    def quarantine_entries(self) -> List[Dict[str, str]]:
        """The quarantined records: ``[{"file", "reason", "source"}, ...]``."""
        entries = []
        if not self.quarantine_dir.is_dir():
            return entries
        for path in sorted(self.quarantine_dir.glob("*.json")):
            if path.name.startswith(".tmp-"):
                continue
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                reason = entry.get("reason", "unknown")
                source = entry.get("source", "")
            except (OSError, ValueError, AttributeError):
                reason, source = "unreadable-quarantine-entry", ""
            entries.append({"file": path.name, "reason": reason, "source": source})
        return entries

    def purge_quarantine(self) -> int:
        """Delete every quarantine entry; returns the number removed."""
        removed = 0
        if not self.quarantine_dir.is_dir():
            return removed
        for path in list(self.quarantine_dir.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.quarantine_dir.rmdir()
        except OSError:
            pass
        return removed

    # -- maintenance --------------------------------------------------------

    def _record_paths(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("v*/??/*.json")):
            if not path.name.startswith(".tmp-"):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    def stats(self) -> Dict[str, object]:
        """Summary of what is on disk (for ``repro store stats``).

        ``by_kind`` counts current-schema records per experiment kind;
        unreadable records land in the ``"<corrupt>"`` bucket.
        """
        records = 0
        size_bytes = 0
        stale = 0
        by_kind: Dict[str, int] = {}
        for path in self._record_paths():
            records += 1
            try:
                size_bytes += path.stat().st_size
            except OSError:
                continue
            if f"v{STORE_SCHEMA}" not in path.parts:
                stale += 1
                continue
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                kind_name = record["kind"]
                if not isinstance(kind_name, str):
                    raise TypeError("kind is not a string")
            except (OSError, ValueError, KeyError, TypeError):
                kind_name = "<corrupt>"
            by_kind[kind_name] = by_kind.get(kind_name, 0) + 1
        quarantine = self.quarantine_entries()
        reasons: Dict[str, int] = {}
        for entry in quarantine:
            reasons[entry["reason"]] = reasons.get(entry["reason"], 0) + 1
        return {
            "root": str(self.root),
            "records": records,
            "bytes": size_bytes,
            "stale_schema_records": stale,
            "by_kind": dict(sorted(by_kind.items())),
            "quarantine_records": len(quarantine),
            "quarantine_reasons": dict(sorted(reasons.items())),
            **self.telemetry.snapshot(),
        }

    def records(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        """Catalog of current-schema records (for ``GET /v1/runs``).

        Each entry carries the record's content digest, its kind and
        kind-schema version, and the canonical key string — enough for a
        client to tell what has already been computed without decoding
        stats.  Unreadable records are skipped (``stats()`` counts them);
        ``kind`` filters to one experiment family.
        """
        entries: List[Dict[str, object]] = []
        for path in self._record_paths():
            if f"v{STORE_SCHEMA}" not in path.parts:
                continue
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                record_kind = record["kind"]
                key = record["key"]
                kind_schema = record["kind_schema"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if kind is not None and record_kind != kind:
                continue
            entries.append(
                {
                    "digest": path.stem,
                    "kind": record_kind,
                    "kind_schema": kind_schema,
                    "key": key,
                }
            )
        return entries

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in list(self._record_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @staticmethod
    def _gc_reason(raw: str) -> Optional[str]:
        """Why a current-schema record must go, or ``None`` to keep it."""
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                return "parse-error"
        except ValueError:
            return "parse-error"
        try:
            kind = get_kind(record["kind"])
        except (UnknownExperimentKind, KeyError, TypeError):
            return "unknown-kind"
        if record.get("schema") != STORE_SCHEMA:
            return "store-schema-mismatch"
        if record.get("kind_schema") != kind.schema_version:
            return "kind-schema-mismatch"
        try:
            kind.stats_type.from_dict(record["stats"])
        except (ValueError, KeyError, TypeError):
            return "stats-decode-error"
        return None

    def gc(self) -> Tuple[int, int]:
        """Drop corrupt, stale-schema and unknown-kind records.

        Returns ``(kept, removed)``.  A record is kept only if it lives
        under the current schema directory, names a registered kind whose
        stats schema matches, and parses cleanly all the way through that
        kind's ``from_dict``.  One kind's corrupt records never force
        another kind's records out.  Dropped records are routed through
        the quarantine sidecar (with their reason code) rather than
        destroyed, so ``store quarantine`` can still explain what went
        wrong.
        """
        kept = removed = 0
        for path in list(self._record_paths()):
            if f"v{STORE_SCHEMA}" not in path.parts:
                reason = "stale-store-schema"
            else:
                try:
                    raw = path.read_text(encoding="utf-8")
                except OSError:
                    continue  # vanished under us: neither kept nor removed
                reason = self._gc_reason(raw)
            if reason is None:
                kept += 1
            else:
                self._quarantine(path, reason)
                removed += 1
        return kept, removed


def default_store_root() -> Optional[pathlib.Path]:
    """Resolve the store location from the environment.

    ``None`` means persistence is disabled.
    """
    override = os.environ.get(ENV_RESULT_DIR)
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return pathlib.Path(override).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(cache_home) if cache_home else pathlib.Path.home() / ".cache"
    return base / "repro" / "results"


def open_default_store() -> Optional[ResultStore]:
    """A :class:`ResultStore` at the default location, or ``None`` if off."""
    root = default_store_root()
    return None if root is None else ResultStore(root)
