"""Zero-copy trace shipping between pool processes via shared memory.

Worker processes used to rebuild every trace from its workload generator
— deterministic, but the generators cost far more than the vectorised
simulation they feed.  Instead the parent builds (or loads) each distinct
trace once, publishes its four component arrays into one
:class:`multiprocessing.shared_memory.SharedMemory` page, and ships
workers a tiny picklable :class:`SharedTraceHandle`.  Workers map the
page and wrap numpy views over it — no copy, no regeneration — and
memoize the attachment per process, so a worker simulating forty
configurations of one trace maps it once.

Page layout (``ARRAY_DTYPES`` order, descending alignment, so every
array sits naturally aligned)::

    int64 addresses[n] | int32 sizes[n] | int32 icounts[n] | int8 kinds[n]

Lifetime: the parent owns the page and unlinks it when done
(:meth:`SharedTrace.unlink`); workers only map.  Python's
``resource_tracker`` would normally tear pages down when the *first*
attaching worker exits — attachments are explicitly unregistered to keep
ownership with the parent (the 3.13 ``track=False`` parameter, done by
hand for 3.11).
"""

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.trace.trace import ARRAY_DTYPES, Trace

#: Bytes per reference in a shared page (8 + 4 + 4 + 1).
BYTES_PER_REF = sum(np.dtype(dtype).itemsize for _, dtype in ARRAY_DTYPES)


@dataclass(frozen=True)
class SharedTraceHandle:
    """Picklable descriptor of a trace published in shared memory."""

    shm_name: str
    length: int
    trace_name: str


class SharedTrace:
    """Parent-side owner of one published trace page."""

    def __init__(self, trace: Trace) -> None:
        length = len(trace)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, length * BYTES_PER_REF)
        )
        # Copy the component arrays into the page in layout order.
        offset = 0
        for array in _component_arrays(trace):
            view = np.ndarray(length, dtype=array.dtype, buffer=self._shm.buf, offset=offset)
            view[:] = array
            offset += array.nbytes
        self.handle = SharedTraceHandle(self._shm.name, length, trace.name)

    def close(self) -> None:
        """Drop the parent's mapping (the page itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the page; call after every consumer is done."""
        self._shm.unlink()


def _component_arrays(trace: Trace) -> Tuple[np.ndarray, ...]:
    """The trace's canonical arrays in page layout order."""
    return (
        trace.address_array,
        trace.size_array,
        trace.icount_array,
        trace.kind_array,
    )


def export_trace(trace: Trace) -> SharedTrace:
    """Publish ``trace`` into a fresh shared-memory page."""
    return SharedTrace(trace)


#: Per-process memo of attached pages: shm name -> (mapping, trace).  The
#: mapping object must stay referenced as long as the trace's arrays do —
#: dropping it would free the buffer under the numpy views.
_attached: Dict[str, Tuple[shared_memory.SharedMemory, Trace]] = {}


def attach_trace(handle: SharedTraceHandle) -> Trace:
    """Map a published trace (memoized per process, zero-copy)."""
    cached = _attached.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    # Attaching would register the page with the resource tracker, which
    # tears tracked pages down when the first registrant exits — but the
    # parent owns this page.  Suppress the registration (what Python
    # 3.13's track=False does); unregister-after-the-fact is not enough,
    # because forked workers share one tracker and the second worker's
    # unregister of an already-removed name spews tracker tracebacks.
    if handle.length < 0:
        raise ValueError(f"shared trace handle has negative length {handle.length}")
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        mapping = shared_memory.SharedMemory(name=handle.shm_name)
    finally:
        resource_tracker.register = original_register
    # A page smaller than the handle promises (truncated by a dying
    # parent, or a stale name reused by another process) must read as an
    # attach failure, not as numpy views running off the buffer; callers
    # regenerate the trace from its workload generator instead.
    needed = handle.length * BYTES_PER_REF
    if mapping.size < needed:
        mapping.close()
        raise ValueError(
            f"shared page {handle.shm_name!r} holds {mapping.size} bytes "
            f"but the handle promises {needed}"
        )
    length = handle.length
    offset = 0
    components = {}
    for attribute, dtype in ARRAY_DTYPES:
        array = np.ndarray(length, dtype=dtype, buffer=mapping.buf, offset=offset)
        array.flags.writeable = False
        components[attribute] = array
        offset += array.nbytes
    trace = Trace.from_arrays(
        components["addresses"],
        components["sizes"],
        components["kinds"],
        components["icounts"],
        name=handle.trace_name,
    )
    _attached[handle.shm_name] = (mapping, trace)
    return trace
