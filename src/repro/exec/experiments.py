"""Kind-dispatched experiment registry.

Every simulator family in the repo — the fast L1 cache simulator, the
coalescing write buffer, the write cache, the dirty-victim buffer and the
composed hierarchy — produces results through the same pipeline: build a
spec, hash it into a content address, check the result store, compute on
miss.  What differs per family is *how* to compute and *what* the stats
look like.  This module holds that per-family knowledge as a registry of
:class:`ExperimentKind` entries, keyed by a stable string tag.

Each kind contributes:

- ``runner(spec, trace) -> stats`` — the actual simulation;
- ``stats_type`` — the dataclass with ``kind``/``to_dict``/``from_dict``,
  used to (de)serialize store records;
- ``engine_version`` — folded into every content address of that kind, so
  bumping one family's engine orphans only that family's stored results;
- ``schema_version`` — version of the stats *record layout*; the store
  rejects records whose ``kind_schema`` does not match, so a counter
  rename cannot resurrect as garbage.

Builtin kinds register lazily on first lookup (importing
:mod:`repro.exec.runners` pulls in every simulator family; doing that at
module-import time would create cycles with the families themselves).
Downstream code can register additional kinds with :func:`register_runner`
— worker processes re-trigger the lazy import, so builtin kinds dispatch
identically under :class:`~concurrent.futures.ProcessPoolExecutor`.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError


class UnknownExperimentKind(ConfigurationError):
    """A spec named a kind that no runner has been registered for."""


@dataclass(frozen=True)
class ExperimentKind:
    """Everything the experiment layer knows about one simulator family."""

    name: str
    runner: Callable
    stats_type: type
    engine_version: str
    schema_version: int = 1
    #: Optional ``batch_runner(specs, trace) -> [stats, ...]`` for kinds
    #: whose engine can amortise trace passes across several specs that
    #: share one trace (see ``repro.cache.fastsim.simulate_trace_batch``).
    #: Must return results in spec order, each bit-identical to
    #: ``runner(spec, trace)``; the pool only groups specs that agree on
    #: ``(workload, scale, seed, flush)``.  The pool's degradation ladder
    #: may re-dispatch any contiguous *sub-list* of a failed group (batch
    #: bisection), so a batch runner must accept arbitrary subsets of a
    #: grid it has seen before — never assume a fixed grid shape or carry
    #: state between calls beyond caches keyed by the inputs themselves.
    batch_runner: Optional[Callable] = None
    #: Optional ``info_batch_runner(specs, trace) -> ([stats, ...], dict)``
    #: — a batch runner that also reports dispatch counters (currently
    #: ``profiled_runs``/``profile_passes`` from reuse-distance ladder
    #: collapses).  The stats list must be exactly what ``batch_runner``
    #: would return; the pool prefers this entry point when present and
    #: folds the counters into :class:`~repro.exec.pool.PoolTelemetry`.
    info_batch_runner: Optional[Callable] = None
    #: Optional config class with ``to_dict``/``from_dict``; kinds that
    #: register one can round-trip whole :class:`ExperimentSpec`\ s through
    #: JSON (the experiment service's wire format).  Kinds without one
    #: still run locally but cannot be submitted over the wire.
    config_type: Optional[type] = None


_REGISTRY: Dict[str, ExperimentKind] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        # Registers the builtin kinds via its module-level register_runner
        # calls; import is deferred to break the families -> exec cycle.
        import repro.exec.runners  # noqa: F401


def register_runner(
    name: str,
    runner: Callable,
    stats_type: type,
    engine_version,
    schema_version: int = 1,
    replace: bool = False,
    batch_runner: Optional[Callable] = None,
    info_batch_runner: Optional[Callable] = None,
    config_type: Optional[type] = None,
) -> ExperimentKind:
    """Register (or, with ``replace``, override) an experiment kind.

    ``stats_type`` must carry a ``kind`` class attribute equal to ``name``
    plus ``to_dict``/``from_dict`` — the store relies on all three.
    ``config_type``, when given, must round-trip through
    ``to_dict``/``from_dict`` too — the experiment service relies on it to
    rebuild wire-submitted specs.
    """
    if getattr(stats_type, "kind", None) != name:
        raise ConfigurationError(
            f"stats type {stats_type.__name__} declares kind="
            f"{getattr(stats_type, 'kind', None)!r}, expected {name!r}"
        )
    for method in ("to_dict", "from_dict"):
        if not callable(getattr(stats_type, method, None)):
            raise ConfigurationError(
                f"stats type {stats_type.__name__} lacks {method}()"
            )
    if config_type is not None:
        for method in ("to_dict", "from_dict"):
            if not callable(getattr(config_type, method, None)):
                raise ConfigurationError(
                    f"config type {config_type.__name__} lacks {method}()"
                )
    if info_batch_runner is not None and batch_runner is None:
        raise ConfigurationError(
            f"kind {name!r} registers info_batch_runner without batch_runner; "
            "batch grouping keys off batch_runner, so the info entry point "
            "would never be reached"
        )
    if not replace and name in _REGISTRY:
        raise ConfigurationError(f"experiment kind {name!r} is already registered")
    kind = ExperimentKind(
        name=name,
        runner=runner,
        stats_type=stats_type,
        engine_version=str(engine_version),
        schema_version=schema_version,
        batch_runner=batch_runner,
        info_batch_runner=info_batch_runner,
        config_type=config_type,
    )
    _REGISTRY[name] = kind
    return kind


def unregister_runner(name: str) -> None:
    """Remove a kind (primarily for tests); unknown names are ignored."""
    _REGISTRY.pop(name, None)


def get_kind(name: str) -> ExperimentKind:
    """Look up a kind, loading builtins on first use."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownExperimentKind(
            f"unknown experiment kind {name!r} (registered: {known})"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    """Sorted names of every registered kind."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def engine_version_for(name: str) -> str:
    """The engine-version tag a spec of this kind hashes into its address."""
    return get_kind(name).engine_version
