"""Write-side buffering structures (Section 3 of the paper).

- :class:`repro.buffers.write_buffer.CoalescingWriteBuffer` — the timing
  model behind Fig. 5: merge rate and CPU stall CPI as a function of the
  retirement interval.
- :class:`repro.buffers.write_cache.WriteCache` — the paper's proposal: a
  small fully-associative cache of 8 B lines behind a write-through cache
  (Figs 6-9), optionally with victim-cache functionality.
- :class:`repro.buffers.victim_buffer.DirtyVictimBuffer` — the write-back
  cache's counterpart buffer (Table 3).
- :class:`repro.buffers.victim_cache.VictimCache`,
  :class:`repro.buffers.miss_cache.MissCache` and
  :class:`repro.buffers.stream_buffer.StreamBuffer` — the Jouppi-1990
  miss-side structures a hierarchy level can attach (reference [10];
  compared head-to-head by the mechanism-comparison figure).
"""

from repro.buffers.write_buffer import (
    CoalescingWriteBuffer,
    WriteBufferConfig,
    WriteBufferStats,
)
from repro.buffers.write_cache import (
    WriteCache,
    WriteCacheBackend,
    WriteCacheConfig,
    WriteCacheStats,
)
from repro.buffers.victim_buffer import (
    DirtyVictimBuffer,
    VictimBufferConfig,
    VictimBufferStats,
)
from repro.buffers.victim_cache import (
    VictimCache,
    VictimCacheBackend,
    VictimCacheStats,
    attach_victim_cache,
)
from repro.buffers.miss_cache import (
    MissCache,
    MissCacheBackend,
    MissCacheStats,
    attach_miss_cache,
)
from repro.buffers.stream_buffer import (
    StreamBuffer,
    StreamBufferBackend,
    StreamBufferStats,
    attach_stream_buffer,
)

__all__ = [
    "CoalescingWriteBuffer",
    "WriteBufferConfig",
    "WriteBufferStats",
    "WriteCache",
    "WriteCacheBackend",
    "WriteCacheConfig",
    "WriteCacheStats",
    "DirtyVictimBuffer",
    "VictimBufferConfig",
    "VictimBufferStats",
    "VictimCache",
    "VictimCacheBackend",
    "VictimCacheStats",
    "attach_victim_cache",
    "MissCache",
    "MissCacheBackend",
    "MissCacheStats",
    "attach_miss_cache",
    "StreamBuffer",
    "StreamBufferBackend",
    "StreamBufferStats",
    "attach_stream_buffer",
]
