"""Stream buffers (Jouppi 1990, the paper's reference [10]).

N FIFO queues of sequentially prefetched lines between a cache and the
next level.  A miss that also misses every stream allocates the
least-recently-used stream, which starts prefetching the lines *after*
the missed one; a miss that hits a stream is serviced from the buffer,
the entries ahead of the hit are discarded, and the stream refills to its
depth.  Prefetch fetches are real downstream traffic — that is the whole
trade the mechanism-comparison figure measures: stream buffers trade
extra fetch traffic for sequential-miss coverage, where victim and miss
caches only ever remove traffic.

Lookup compares all entries of every stream, not just the FIFO heads
(Jouppi's follow-up "non-blocking" lookup), so a stream survives a short
stride stutter.  Entries are always clean: stores take the normal
write-back/write-through paths untouched, and flush adds no traffic.
"""

from collections import deque
from dataclasses import dataclass
from typing import ClassVar, Deque, List

from repro.common.bitops import log2_int
from repro.common.errors import ConfigurationError
from repro.common.lru import LruTracker
from repro.common.serde import CounterSerde
from repro.cache.backend import Backend


@dataclass
class StreamBufferStats(CounterSerde):
    """Counters for one stream-buffer run."""

    kind: ClassVar[str] = "stream_buffer"

    fetch_probes: int = 0  #: primary-cache misses that probed the streams
    hits: int = 0  #: probes serviced from a stream
    allocations: int = 0  #: streams (re)started by a total miss
    prefetch_fetches: int = 0  #: downstream line fetches issued ahead of demand

    @property
    def hit_fraction(self) -> float:
        """Fraction of primary-cache misses serviced by a stream."""
        return self.hits / self.fetch_probes if self.fetch_probes else 0.0


class StreamBuffer:
    """N sequential prefetch streams with LRU allocation."""

    def __init__(self, streams: int, depth: int, line_size: int) -> None:
        if streams < 1:
            raise ConfigurationError("stream buffer needs at least one stream")
        if depth < 1:
            raise ConfigurationError("stream depth must be at least one line")
        log2_int(line_size)
        self.streams = streams
        self.depth = depth
        self.line_size = line_size
        self.stats = StreamBufferStats()
        self._lru = LruTracker()
        self._queues: List[Deque[int]] = [deque() for _ in range(streams)]
        for index in range(streams):
            self._lru.touch(index)

    def lookup(self, line_address: int):
        """Find ``line_address`` in any stream; returns (stream, position)."""
        for index, queue in enumerate(self._queues):
            for position, buffered in enumerate(queue):
                if buffered == line_address:
                    return index, position
        return None

    def consume(self, index: int, position: int) -> int:
        """Service a hit: drop entries up to and including the hit.

        Returns how many prefetches the refill needs; the caller issues
        them (it owns the downstream) and records them via
        :meth:`refill`.
        """
        queue = self._queues[index]
        for _ in range(position + 1):
            queue.popleft()
        self._lru.touch(index)
        return self.depth - len(queue)

    def next_prefetch_address(self, index: int, fallback: int) -> int:
        """The line the stream's next prefetch should fetch."""
        queue = self._queues[index]
        if queue:
            return queue[-1] + self.line_size
        return fallback

    def refill(self, index: int, line_address: int) -> None:
        """Record one issued prefetch at the tail of a stream."""
        self._queues[index].append(line_address)

    def allocate(self) -> int:
        """Restart the least-recently-used stream; returns its index."""
        index = self._lru.evict()
        self._queues[index].clear()
        self._lru.touch(index)
        self.stats.allocations += 1
        return index

    def clear(self) -> None:
        """Drop every stream (no traffic: prefetched lines are clean)."""
        for queue in self._queues:
            queue.clear()


class StreamBufferBackend(Backend):
    """Compose stream buffers between a primary cache and the next level."""

    def __init__(self, stream_buffer: StreamBuffer, memory: Backend) -> None:
        self.stream_buffer = stream_buffer
        self.memory = memory

    def _refill(self, index: int, fallback: int, count: int) -> None:
        buffer = self.stream_buffer
        for _ in range(count):
            address = buffer.next_prefetch_address(index, fallback)
            buffer.stats.prefetch_fetches += 1
            self.memory.fetch(address, buffer.line_size)
            buffer.refill(index, address)

    def fetch(self, address: int, size: int):
        buffer = self.stream_buffer
        buffer.stats.fetch_probes += 1
        base = address & ~(buffer.line_size - 1)
        found = buffer.lookup(base)
        if found is not None:
            buffer.stats.hits += 1
            index, position = found
            missing = buffer.consume(index, position)
            self._refill(index, base + buffer.line_size, missing)
            return None
        result = self.memory.fetch(address, size)  # demand miss goes first
        index = buffer.allocate()
        self._refill(index, base + buffer.line_size, buffer.depth)
        return result

    def write_back(self, line_address: int, line_size: int, dirty_mask: int, data=None):
        self.memory.write_back(line_address, line_size, dirty_mask, data)

    def write_through(self, address: int, size: int, data=None) -> None:
        self.memory.write_through(address, size, data)

    def flush(self) -> None:
        """End of run: drop the (clean) streams; no traffic results."""
        self.stream_buffer.clear()


def attach_stream_buffer(
    cache, streams: int, depth: int, memory: Backend
) -> StreamBufferBackend:
    """Wire stream buffers between ``cache`` and ``memory``."""
    if cache.config.store_data:
        raise ConfigurationError(
            "the stream buffer is a stats-only structure (it does not "
            "buffer data); disable store_data on the primary cache"
        )
    backend = StreamBufferBackend(
        StreamBuffer(streams, depth, cache.config.line_size), memory
    )
    cache.backend = backend
    return backend
