"""Miss cache (Jouppi 1990, the paper's reference [10]).

A small fully-associative buffer that allocates the missed line on *every*
miss of the cache above it — unlike the victim cache it duplicates lines
still resident above, so it converts short-reuse conflict misses into
buffer hits without waiting for the line to be replaced first.  Jouppi
found the victim cache strictly better per entry, which is exactly the
comparison the mechanism-comparison figure draws; the structure exists
here so that comparison can be measured, not assumed.

:class:`MissCacheBackend` composes it between a
:class:`~repro.cache.cache.Cache` and the next level: fetches probe the
buffer first, and only probe misses propagate downstream (where they are
also inserted, allocate-on-any-miss).  Entries are never dirty — stores
take the normal write-back/write-through paths untouched — so the
structure is stats-only and adds no flush traffic.
"""

from dataclasses import dataclass
from typing import ClassVar, Dict

from repro.common.bitops import log2_int
from repro.common.errors import ConfigurationError
from repro.common.lru import LruTracker
from repro.common.serde import CounterSerde
from repro.cache.backend import Backend


@dataclass
class MissCacheStats(CounterSerde):
    """Counters for one miss-cache run."""

    kind: ClassVar[str] = "miss_cache"

    inserts: int = 0  #: lines allocated on a probe miss
    fetch_probes: int = 0  #: primary-cache misses that probed here
    hits: int = 0  #: probes serviced without a downstream fetch
    evictions: int = 0  #: entries displaced by newer allocations

    @property
    def hit_fraction(self) -> float:
        """Fraction of primary-cache misses serviced by the miss cache."""
        return self.hits / self.fetch_probes if self.fetch_probes else 0.0


class MissCache:
    """Small fully-associative LRU buffer allocated on every miss.

    Lines are tracked at byte granularity (a valid mask per line) so
    sub-block fetch spans allocate and hit exactly the bytes they cover.
    """

    def __init__(self, entries: int, line_size: int) -> None:
        if entries < 1:
            raise ConfigurationError("miss cache needs at least one entry")
        log2_int(line_size)
        self.entries = entries
        self.line_size = line_size
        self.stats = MissCacheStats()
        self._lru = LruTracker()
        #: line_address -> valid_mask
        self._lines: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._lru)

    def probe(self, line_address: int, span_mask: int) -> bool:
        """Are all of ``span_mask``'s bytes of this line buffered?"""
        valid = self._lines.get(line_address)
        if valid is None or (valid & span_mask) != span_mask:
            return False
        self._lru.touch(line_address)
        return True

    def insert(self, line_address: int, span_mask: int) -> None:
        """Allocate (or widen) a line after a downstream fetch."""
        self.stats.inserts += 1
        if line_address in self._lru:
            self._lines[line_address] |= span_mask
            self._lru.touch(line_address)
            return
        if len(self._lru) >= self.entries:
            evicted = self._lru.evict()
            del self._lines[evicted]
            self.stats.evictions += 1
        self._lru.touch(line_address)
        self._lines[line_address] = span_mask

    def clear(self) -> None:
        """Drop every entry (no traffic: miss-cache lines are never dirty)."""
        self._lru.clear()
        self._lines.clear()


class MissCacheBackend(Backend):
    """Compose a miss cache between a primary cache and the next level.

    Stats-only: the buffer holds addresses, not data, so it can only sit
    under a cache that is itself stats-only (``fetch`` returning ``None``
    is indistinguishable from a data fetch there).
    """

    def __init__(self, miss_cache: MissCache, memory: Backend) -> None:
        self.miss_cache = miss_cache
        self.memory = memory

    def _span(self, address: int, size: int):
        line_size = self.miss_cache.line_size
        base = address & ~(line_size - 1)
        offset = address - base
        span_mask = ((1 << size) - 1) << offset
        return base, span_mask

    def fetch(self, address: int, size: int):
        self.miss_cache.stats.fetch_probes += 1
        base, span_mask = self._span(address, size)
        if self.miss_cache.probe(base, span_mask):
            self.miss_cache.stats.hits += 1
            return None
        result = self.memory.fetch(address, size)
        self.miss_cache.insert(base, span_mask)
        return result

    def write_back(self, line_address: int, line_size: int, dirty_mask: int, data=None):
        # Dirty victims bypass the buffer (its entries are never dirty);
        # any stale duplicate simply re-fetches on its next probe span.
        self.memory.write_back(line_address, line_size, dirty_mask, data)

    def write_through(self, address: int, size: int, data=None) -> None:
        self.memory.write_through(address, size, data)

    def flush(self) -> None:
        """End of run: drop the (clean) contents; no traffic results."""
        self.miss_cache.clear()


def attach_miss_cache(cache, entries: int, memory: Backend) -> MissCacheBackend:
    """Wire a miss cache between ``cache`` and ``memory``."""
    if cache.config.store_data:
        raise ConfigurationError(
            "the miss cache is a stats-only structure (it does not "
            "buffer data); disable store_data on the primary cache"
        )
    backend = MissCacheBackend(MissCache(entries, cache.config.line_size), memory)
    cache.backend = backend
    return backend
