"""Victim cache (Jouppi 1990, the paper's reference [10]).

Section 3.2 notes the write cache "can also be implemented with the
additional functionality of a victim cache, in which case not all entries
in the small fully-associative cache would be dirty."  This module
provides the full-line victim cache itself: a small fully-associative
buffer that captures every line replaced from a direct-mapped cache
(clean or dirty) and services later misses to those lines, turning
conflict misses into swaps instead of fetches.

:class:`VictimCacheBackend` composes it behind a
:class:`~repro.cache.cache.Cache` using the cache's ``victim_hook``.
"""

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.lru import LruTracker
from repro.common.serde import CounterSerde
from repro.cache.backend import Backend
from repro.cache.cache import Cache


@dataclass
class VictimCacheStats(CounterSerde):
    """Counters for one victim-cache run."""

    kind: ClassVar[str] = "victim_cache"

    inserts: int = 0  #: victims captured from the primary cache
    fetch_probes: int = 0  #: primary-cache misses that probed here
    hits: int = 0  #: probes serviced without a memory fetch
    evictions: int = 0  #: entries displaced to the next level
    dirty_evictions: int = 0

    @property
    def hit_fraction(self) -> float:
        """Fraction of primary-cache misses serviced by the victim cache."""
        return self.hits / self.fetch_probes if self.fetch_probes else 0.0


class VictimCache:
    """Small fully-associative LRU buffer of whole victim lines."""

    def __init__(self, entries: int, line_size: int) -> None:
        if entries < 1:
            raise ConfigurationError("victim cache needs at least one entry")
        self.entries = entries
        self.line_size = line_size
        self.stats = VictimCacheStats()
        self._lru = LruTracker()
        #: line_address -> (valid_mask, dirty_mask)
        self._lines: Dict[int, Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._lru)

    def insert(self, line_address: int, valid_mask: int, dirty_mask: int) -> Optional[Tuple[int, int, int]]:
        """Capture a victim; returns a displaced (address, valid, dirty) or None."""
        self.stats.inserts += 1
        displaced = None
        if line_address in self._lru:
            old_valid, old_dirty = self._lines[line_address]
            self._lines[line_address] = (old_valid | valid_mask, old_dirty | dirty_mask)
            self._lru.touch(line_address)
            return None
        if len(self._lru) >= self.entries:
            evicted_address = self._lru.evict()
            valid, dirty = self._lines.pop(evicted_address)
            self.stats.evictions += 1
            if dirty:
                self.stats.dirty_evictions += 1
            displaced = (evicted_address, valid, dirty)
        self._lru.touch(line_address)
        self._lines[line_address] = (valid_mask, dirty_mask)
        return displaced

    def take(self, line_address: int) -> Optional[Tuple[int, int]]:
        """Remove and return (valid, dirty) for a line, if fully present.

        Partial lines (write-validate residue) cannot service a full-line
        fetch, so they do not count as hits.
        """
        state = self._lines.get(line_address)
        if state is None:
            return None
        full_mask = (1 << self.line_size) - 1
        if state[0] != full_mask:
            return None
        self._lru.discard(line_address)
        del self._lines[line_address]
        return state

    def drain(self):
        """Yield and clear every buffered (address, valid, dirty) entry."""
        for line_address in self._lru.as_list():
            yield (line_address, *self._lines[line_address])
        self._lru.clear()
        self._lines.clear()


class VictimCacheBackend(Backend):
    """Compose a victim cache between a primary cache and the next level.

    Attach with :func:`attach_victim_cache`, which also wires the primary
    cache's ``victim_hook``.
    """

    def __init__(self, victim_cache: VictimCache, memory: Backend) -> None:
        self.victim_cache = victim_cache
        self.memory = memory

    def on_victim(self, line_address: int, valid_mask: int, dirty_mask: int) -> None:
        """Primary-cache victim (clean or dirty) enters the buffer."""
        displaced = self.victim_cache.insert(line_address, valid_mask, dirty_mask)
        if displaced is not None:
            address, _, dirty = displaced
            if dirty:
                self.memory.write_back(address, self.victim_cache.line_size, dirty)

    def fetch(self, line_address: int, line_size: int):
        self.victim_cache.stats.fetch_probes += 1
        state = self.victim_cache.take(line_address)
        if state is not None:
            self.victim_cache.stats.hits += 1
            # Swapped back into the primary cache.  The primary cache
            # re-installs the line clean, so any dirty bytes must be
            # retired to memory as part of the swap (a real
            # implementation would instead transfer the dirty bit; this
            # accounting is slightly pessimistic on write-back traffic
            # and exact on fetch traffic).
            _, dirty = state
            if dirty:
                self.memory.write_back(line_address, line_size, dirty)
            return None
        return self.memory.fetch(line_address, line_size)

    def write_back(self, line_address: int, line_size: int, dirty_mask: int, data=None):
        # Dirty victims come through the victim hook as well; the hook
        # fires first and keeps the line buffered, so suppress the
        # duplicate memory write-back while the line sits in the buffer.
        if line_address not in self.victim_cache._lines:
            self.memory.write_back(line_address, line_size, dirty_mask, data)

    def write_through(self, address: int, size: int, data=None) -> None:
        self.memory.write_through(address, size, data)

    def flush(self) -> None:
        """Drain remaining dirty entries to memory (end of run)."""
        for line_address, _, dirty in self.victim_cache.drain():
            if dirty:
                self.memory.write_back(line_address, self.victim_cache.line_size, dirty)


def attach_victim_cache(cache: Cache, entries: int, memory: Backend) -> VictimCacheBackend:
    """Wire a victim cache between ``cache`` and ``memory``.

    Only meaningful for direct-mapped primary caches (the structure
    exists to absorb their conflict misses).
    """
    if not cache.config.is_direct_mapped:
        raise ConfigurationError(
            "a victim cache targets direct-mapped conflict misses; "
            "use higher associativity instead for set-associative caches"
        )
    if cache.config.store_data:
        raise ConfigurationError(
            "the victim cache is a stats-only structure (it does not "
            "buffer data); disable store_data on the primary cache"
        )
    backend = VictimCacheBackend(VictimCache(entries, cache.config.line_size), memory)
    cache.backend = backend
    cache.victim_hook = backend.on_victim
    return backend
