"""Coalescing write buffer timing model (Section 3.2, Fig. 5).

The paper's experiment: an 8-entry write buffer with cache-line-wide
(16 B) entries sits behind a write-through cache; the next level retires
one entry every ``n`` cycles.  Writes to an address already in the buffer
merge into the existing entry; writes arriving at a full buffer stall the
CPU until an entry retires.  Cache misses are ignored ("a fixed time
between writes [is] a reasonable model"), so time advances by the
instruction counts carried in the trace (base CPI of 1).

The headline tension this reproduces: significant merging requires entries
to linger, which requires the buffer to be nearly always full, which means
stores stall — so a simple coalescing buffer cannot both merge well and
stall little.
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import ClassVar

from repro.common.bitops import log2_int
from repro.common.errors import ConfigurationError
from repro.common.serde import CounterSerde
from repro.trace.events import WRITE
from repro.trace.trace import Trace

#: Bump whenever a model change can alter the statistics produced for an
#: unchanged (trace, config) pair; the result store folds the kind's
#: engine version into every write-buffer content hash.
WRITE_BUFFER_ENGINE_VERSION = 1


#: How loads interact with buffered stores (Smith [13] design space):
#: - ``"ignore"``: loads bypass the buffer (the paper's Fig. 5 model —
#:   correct when read misses are checked against the buffer elsewhere);
#: - ``"forward"``: a load matching a buffered line is satisfied from the
#:   buffer at no cost (full store-to-load forwarding);
#: - ``"drain"``: a load matching a buffered line stalls until that entry
#:   (and everything ahead of it) retires — the simplest correct
#:   hardware, and the cost the paper's write cache avoids.
READ_POLICIES = ("ignore", "forward", "drain")


@dataclass(frozen=True)
class WriteBufferConfig:
    """Immutable description of one coalescing write buffer experiment."""

    entries: int = 8
    entry_size: int = 16
    retire_interval: int = 5
    read_policy: str = "ignore"

    def cache_key(self) -> str:
        """Stable canonical identity string (hashed by the result store)."""
        return (
            f"wb_entries={self.entries}:entry_size={self.entry_size}:"
            f"retire={self.retire_interval}:reads={self.read_policy}"
        )

    @property
    def name(self) -> str:
        """Short human-readable label for progress reporting."""
        return (
            f"WB{self.entries}x{self.entry_size}B/"
            f"retire{self.retire_interval}/{self.read_policy}"
        )

    def build(self) -> "CoalescingWriteBuffer":
        """Instantiate the buffer this config describes (validates here)."""
        return CoalescingWriteBuffer(
            entries=self.entries,
            entry_size=self.entry_size,
            retire_interval=self.retire_interval,
            read_policy=self.read_policy,
        )

    def to_dict(self) -> dict:
        """JSON-safe payload covering every identity field."""
        return {
            "entries": self.entries,
            "entry_size": self.entry_size,
            "retire_interval": self.retire_interval,
            "read_policy": self.read_policy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WriteBufferConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise, missing default."""
        known = {"entries", "entry_size", "retire_interval", "read_policy"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown WriteBufferConfig fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class WriteBufferStats(CounterSerde):
    """Outcome of one write-buffer timing simulation."""

    kind: ClassVar[str] = "write_buffer"

    writes: int = 0  #: stores presented to the buffer
    merged: int = 0  #: stores absorbed into an existing entry
    inserted: int = 0  #: stores that allocated a new entry
    retired: int = 0  #: entries drained to the next level
    stall_cycles: int = 0  #: cycles the CPU waited on a full buffer
    instructions: int = 0  #: dynamic instructions of the driving trace
    full_stalls: int = 0  #: stores that encountered a full buffer
    read_matches: int = 0  #: loads that matched a buffered line
    read_forwards: int = 0  #: matches satisfied by forwarding
    read_drain_stalls: int = 0  #: matches that forced a drain
    read_stall_cycles: int = 0  #: cycles spent draining for loads

    @property
    def merge_fraction(self) -> float:
        """Fraction of all writes merged (Fig. 5 left axis)."""
        return self.merged / self.writes if self.writes else 0.0

    @property
    def stall_cpi(self) -> float:
        """Store stall cycles per instruction (Fig. 5 right axis)."""
        return self.stall_cycles / self.instructions if self.instructions else 0.0

    @property
    def total_stall_cpi(self) -> float:
        """Store plus load-drain stall cycles per instruction."""
        if not self.instructions:
            return 0.0
        return (self.stall_cycles + self.read_stall_cycles) / self.instructions


class CoalescingWriteBuffer:
    """FIFO write buffer with coalescing and fixed-interval retirement."""

    def __init__(
        self,
        entries: int = 8,
        entry_size: int = 16,
        retire_interval: int = 5,
        read_policy: str = "ignore",
    ):
        if entries < 1:
            raise ConfigurationError("write buffer needs at least one entry")
        log2_int(entry_size)
        if retire_interval < 0:
            raise ConfigurationError("retire_interval must be >= 0")
        if read_policy not in READ_POLICIES:
            raise ConfigurationError(
                f"read_policy must be one of {READ_POLICIES}, got {read_policy!r}"
            )
        self.entries = entries
        self.entry_size = entry_size
        self.retire_interval = retire_interval
        self.read_policy = read_policy
        self._offset_mask = entry_size - 1

    def simulate(self, trace: Trace) -> WriteBufferStats:
        """Run the stores of ``trace`` through the buffer.

        Reads in the trace advance time (their instructions execute) but do
        not otherwise interact with the buffer.
        """
        stats = WriteBufferStats()
        interval = self.retire_interval
        capacity = self.entries
        offset_mask = self._offset_mask

        # FIFO of line addresses; OrderedDict gives O(1) membership + order.
        buffer: "OrderedDict[int, None]" = OrderedDict()
        now = 0
        next_retire = None  # cycle of the next retirement, if any pending

        def retire_due(until: int) -> None:
            """Drain every retirement scheduled at or before ``until``."""
            nonlocal next_retire
            while buffer and next_retire is not None and next_retire <= until:
                buffer.popitem(last=False)
                stats.retired += 1
                next_retire = next_retire + interval if buffer else None

        read_policy = self.read_policy
        for address, _, kind, icount in zip(
            trace.addresses, trace.sizes, trace.kinds, trace.icounts
        ):
            now += icount
            stats.instructions += icount
            if kind != WRITE:
                if read_policy == "ignore" or interval == 0:
                    continue
                retire_due(now)
                line_address = address & ~offset_mask
                if line_address not in buffer:
                    continue
                stats.read_matches += 1
                if read_policy == "forward":
                    stats.read_forwards += 1
                    continue
                # drain: stall until the matching entry (and everything
                # ahead of it in FIFO order) has retired.
                stats.read_drain_stalls += 1
                position = list(buffer).index(line_address)
                assert next_retire is not None
                drained_at = next_retire + position * interval
                stats.read_stall_cycles += drained_at - now
                now = drained_at
                retire_due(now)
                continue
            stats.writes += 1
            if interval == 0:
                # Degenerate case: entries retire instantly; nothing ever
                # coalesces and nothing ever stalls.
                stats.inserted += 1
                stats.retired += 1
                continue
            retire_due(now)
            line_address = address & ~offset_mask
            if line_address in buffer:
                stats.merged += 1
                continue
            if len(buffer) >= capacity:
                # Stall until the pending retirement frees an entry.
                stats.full_stalls += 1
                assert next_retire is not None
                stall = next_retire - now
                stats.stall_cycles += stall
                now = next_retire
                retire_due(now)
            buffer[line_address] = None
            stats.inserted += 1
            if next_retire is None:
                next_retire = now + interval
        return stats
