"""Dirty-victim buffer timing model (Section 3, Table 3).

A write-back cache needs somewhere to park a dirty victim while the
demand fetch that displaced it proceeds.  The paper argues a single entry
suffices "only in the case where the next lower level in the hierarchy is
not pipelined and multiple misses with dirty victims occur in series would
a dirty victim buffer with more than one entry be useful".  This model
lets that argument be quantified: given the cycle times at which dirty
victims are produced, it measures how often a miss must stall because the
buffer is still draining.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.serde import CounterSerde
from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.trace.events import WRITE
from repro.trace.trace import Trace

#: Bump whenever the buffer model or victim-time extraction changes in a
#: way that can alter statistics for an unchanged (trace, config) pair.
VICTIM_BUFFER_ENGINE_VERSION = 1


@dataclass(frozen=True)
class VictimBufferConfig:
    """A dirty-victim buffer behind one write-back cache configuration."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    entries: int = 1
    retire_interval: int = 10

    def cache_key(self) -> str:
        """Stable canonical identity string (hashed by the result store)."""
        return (
            f"vb_entries={self.entries}:retire={self.retire_interval}:"
            f"{self.cache.cache_key()}"
        )

    @property
    def name(self) -> str:
        """Short human-readable label for progress reporting."""
        return f"VB{self.entries}/retire{self.retire_interval} behind {self.cache.name}"

    def build(self) -> "DirtyVictimBuffer":
        """Instantiate the buffer this config describes (validates here)."""
        return DirtyVictimBuffer(
            entries=self.entries, retire_interval=self.retire_interval
        )

    def to_dict(self) -> dict:
        """JSON-safe payload; the backing cache nests as its own dict."""
        return {
            "cache": self.cache.to_dict(),
            "entries": self.entries,
            "retire_interval": self.retire_interval,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VictimBufferConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise, missing default."""
        unknown = set(payload) - {"cache", "entries", "retire_interval"}
        if unknown:
            raise ValueError(f"unknown VictimBufferConfig fields: {sorted(unknown)}")
        data = dict(payload)
        if "cache" in data:
            data["cache"] = CacheConfig.from_dict(data["cache"])
        return cls(**data)


@dataclass
class VictimBufferStats(CounterSerde):
    """Outcome of one victim-buffer timing simulation."""

    kind: ClassVar[str] = "victim_buffer"

    victims: int = 0  #: dirty victims presented
    stalls: int = 0  #: victims that found the buffer full
    stall_cycles: int = 0
    instructions: int = 0

    @property
    def stall_fraction(self) -> float:
        """Fraction of dirty victims that had to wait for buffer space."""
        return self.stalls / self.victims if self.victims else 0.0

    @property
    def stall_cpi(self) -> float:
        """Stall cycles per instruction."""
        return self.stall_cycles / self.instructions if self.instructions else 0.0


class DirtyVictimBuffer:
    """FIFO buffer of dirty victims drained at a fixed interval."""

    def __init__(self, entries: int = 1, retire_interval: int = 10) -> None:
        if entries < 1:
            raise ConfigurationError("victim buffer needs at least one entry")
        if retire_interval < 1:
            raise ConfigurationError("retire_interval must be >= 1")
        self.entries = entries
        self.retire_interval = retire_interval

    def simulate(self, victim_times: Iterable[int], instructions: int) -> VictimBufferStats:
        """Replay dirty victims arriving at the given cycle times."""
        stats = VictimBufferStats(instructions=instructions)
        retire_times: deque = deque()  # when each occupied entry frees up
        interval = self.retire_interval
        for time in victim_times:
            stats.victims += 1
            while retire_times and retire_times[0] <= time:
                retire_times.popleft()
            if len(retire_times) >= self.entries:
                stats.stalls += 1
                wait_until = retire_times.popleft()
                stats.stall_cycles += wait_until - time
                time = wait_until
            # This victim starts draining after everything ahead of it.
            start = max(time, retire_times[-1]) if retire_times else time
            retire_times.append(start + interval)
        return stats


def dirty_victim_times(trace: Trace, config: CacheConfig) -> Tuple[List[int], int]:
    """Extract the cycle times at which ``trace`` produces dirty victims.

    Runs the reference simulator and samples its write-back counter after
    every reference; time is cumulative instruction count (base CPI 1).
    Returns ``(times, total_instructions)``.
    """
    cache = Cache(config)
    stats = cache.stats
    times: List[int] = []
    now = 0
    writebacks_seen = 0
    for address, size, kind, icount in zip(
        trace.addresses, trace.sizes, trace.kinds, trace.icounts
    ):
        now += icount
        if kind == WRITE:
            cache.write(address, size)
        else:
            cache.read(address, size)
        if stats.writebacks != writebacks_seen:
            times.extend([now] * (stats.writebacks - writebacks_seen))
            writebacks_seen = stats.writebacks
    return times, now
