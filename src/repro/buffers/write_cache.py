"""The write cache — the paper's proposed structure (Section 3.2, Fig. 6).

A small fully-associative cache of 8 B lines placed between a
write-through data cache and its write buffer.  Writes that hit in the
write cache are merged (removed from the exit traffic); a write that
misses evicts the LRU entry to the next level and takes its place.  8 B
lines "since no writes larger than 8B exist in most architectures, and
write paths leaving chips are often 8B".

The class also supports the paper's noted extension: "a write cache can
also be implemented with the additional functionality of a victim cache,
in which case not all entries in the small fully-associative cache would
be dirty" — enable ``victim_mode`` and feed it L1 victims / read probes.
"""

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.common.bitops import log2_int
from repro.common.errors import ConfigurationError
from repro.common.lru import LruTracker
from repro.common.serde import CounterSerde
from repro.cache.backend import Backend
from repro.trace.events import WRITE
from repro.trace.trace import Trace

#: Bump whenever a model change can alter write-cache statistics for an
#: unchanged (trace, config) pair; invalidates stored write-cache results.
WRITE_CACHE_ENGINE_VERSION = 1


@dataclass(frozen=True)
class WriteCacheConfig:
    """Immutable description of one stand-alone write-cache experiment."""

    entries: int = 5
    line_size: int = 8

    def cache_key(self) -> str:
        """Stable canonical identity string (hashed by the result store)."""
        return f"wc_entries={self.entries}:line={self.line_size}"

    @property
    def name(self) -> str:
        """Short human-readable label for progress reporting."""
        return f"WC{self.entries}x{self.line_size}B"

    def build(self) -> "WriteCache":
        """Instantiate the write cache this config describes."""
        return WriteCache(entries=self.entries, line_size=self.line_size)

    def to_dict(self) -> dict:
        """JSON-safe payload covering every identity field."""
        return {"entries": self.entries, "line_size": self.line_size}

    @classmethod
    def from_dict(cls, payload: dict) -> "WriteCacheConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise, missing default."""
        unknown = set(payload) - {"entries", "line_size"}
        if unknown:
            raise ValueError(f"unknown WriteCacheConfig fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class WriteCacheStats(CounterSerde):
    """Counters for one write-cache run."""

    kind: ClassVar[str] = "write_cache"

    writes: int = 0  #: stores presented
    merged: int = 0  #: stores absorbed by an existing (dirty) entry
    evicted: int = 0  #: entries pushed to the next level during execution
    flushed: int = 0  #: dirty entries pushed at flush time
    read_probes: int = 0  #: victim-mode read probes
    read_hits: int = 0  #: victim-mode read probes that hit

    @property
    def fraction_removed(self) -> float:
        """Fraction of all writes removed from the exit traffic (Fig. 7)."""
        return self.merged / self.writes if self.writes else 0.0

    @property
    def exit_writes(self) -> int:
        """Write transactions leaving the write cache (evictions + flush)."""
        return self.evicted + self.flushed


class WriteCache:
    """Fully-associative LRU cache of small dirty lines."""

    def __init__(
        self,
        entries: int = 5,
        line_size: int = 8,
        downstream: Optional[Backend] = None,
        victim_mode: bool = False,
    ) -> None:
        if entries < 0:
            raise ConfigurationError("entries must be >= 0 (0 = pass-through)")
        log2_int(line_size)
        self.entries = entries
        self.line_size = line_size
        self.downstream = downstream
        self.victim_mode = victim_mode
        self.stats = WriteCacheStats()
        self._lru = LruTracker()  # line address -> recency
        self._dirty = set()  # victim-mode: clean entries are not dirty
        self._offset_mask = line_size - 1

    def __len__(self) -> int:
        return len(self._lru)

    def write(self, address: int, size: int = 4) -> None:
        """Present one store to the write cache."""
        self.stats.writes += 1
        line_address = address & ~self._offset_mask
        if self.entries == 0:
            self._emit(line_address)
            return
        if line_address in self._lru:
            self.stats.merged += 1
            self._lru.touch(line_address)
            self._dirty.add(line_address)
            return
        if len(self._lru) >= self.entries:
            victim = self._lru.evict()
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.stats.evicted += 1
                self._emit(victim)
        self._lru.touch(line_address)
        self._dirty.add(line_address)

    def insert_clean(self, address: int) -> None:
        """Victim-mode: accept a clean line evicted from the L1 cache."""
        if not self.victim_mode or self.entries == 0:
            return
        line_address = address & ~self._offset_mask
        if line_address in self._lru:
            self._lru.touch(line_address)
            return
        if len(self._lru) >= self.entries:
            victim = self._lru.evict()
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.stats.evicted += 1
                self._emit(victim)
        self._lru.touch(line_address)

    def probe_read(self, address: int) -> bool:
        """Victim-mode: can a missing L1 read be serviced from here?"""
        self.stats.read_probes += 1
        line_address = address & ~self._offset_mask
        hit = line_address in self._lru
        if hit:
            self.stats.read_hits += 1
            self._lru.touch(line_address)
        return hit

    def flush(self) -> None:
        """Push every remaining dirty entry to the next level."""
        for line_address in self._lru.as_list():
            if line_address in self._dirty:
                self.stats.flushed += 1
                self._emit(line_address)
        self._lru.clear()
        self._dirty.clear()

    def run_writes(self, trace: Trace, flush: bool = True) -> WriteCacheStats:
        """Feed every store of ``trace`` through the write cache.

        ``flush=True`` (the default) pushes the remaining dirty entries at
        the end — flush-stop accounting; ``flush=False`` leaves them
        resident (cold stop), so ``exit_writes`` counts evictions only.
        """
        offset_mask = self._offset_mask
        entries = self.entries
        lru = self._lru
        if entries == 0:
            write_count = trace.kinds.count(WRITE)
            self.stats.writes += write_count
            self.stats.evicted += write_count
            return self.stats
        # Inline hot loop over stores only (stats-only fast path).
        merged = 0
        writes = 0
        dirty = self._dirty
        for address, kind in zip(trace.addresses, trace.kinds):
            if kind != WRITE:
                continue
            writes += 1
            line_address = address & ~offset_mask
            if line_address in lru:
                merged += 1
                lru.touch(line_address)
            else:
                if len(lru) >= entries:
                    victim = lru.evict()
                    dirty.discard(victim)
                    self.stats.evicted += 1
                    self._emit(victim)
                lru.touch(line_address)
                dirty.add(line_address)
        self.stats.writes += writes
        self.stats.merged += merged
        if flush:
            self.flush()
        return self.stats

    def _emit(self, line_address: int) -> None:
        if self.downstream is not None:
            self.downstream.write_through(line_address, self.line_size)


class WriteCacheBackend(Backend):
    """Adapter placing a :class:`WriteCache` behind a write-through cache.

    Write-throughs enter the write cache; fetches and write-backs pass
    straight to ``memory``.  In victim mode, L1 dirty victims would also be
    inserted — write-through caches have none, so ``write_back`` passing
    through keeps the adapter correct for mixed experiments.
    """

    def __init__(self, write_cache: WriteCache, memory: Backend) -> None:
        self.write_cache = write_cache
        self.memory = memory
        write_cache.downstream = memory

    def fetch(self, line_address: int, line_size: int):
        return self.memory.fetch(line_address, line_size)

    def write_back(self, line_address: int, line_size: int, dirty_mask: int, data=None):
        self.memory.write_back(line_address, line_size, dirty_mask, data)

    def write_through(self, address: int, size: int, data=None) -> None:
        self.write_cache.write(address, size)
